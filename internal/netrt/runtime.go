package netrt

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/realrt"
	"repro/internal/sim"
)

// Runtime is one run generation on one process: a local realrt runtime
// hosting the PE block [Lo,Hi) of a global world of npes PEs, plus the
// per-run wire state — frame counters for termination, the rendezvous
// transfer table, and the abort/halt latch.
//
// The local realrt runtime is held open by one standing work credit
// (taken at creation via realrt's Hold, so the stall watchdog knows it
// is a wait, not runnable work) so its scheduler cannot conclude local
// quiescence while remote work may still arrive; only the distributed
// termination decision — or an abort — releases it.
type Runtime struct {
	node *Node
	gen  int64

	npes, lo, hi int
	rt           *realrt.Runtime

	sent, recv   atomic.Int64 // app frames only
	started      atomic.Bool
	holdReleased atomic.Bool
	aborted      atomic.Bool

	deliver     func(env Env, pooled []byte)
	putSink     func(id int64, payload []byte)
	putStream   func(id int64, size int, r io.Reader) error
	putDoorbell func(id int64, last uint64)
	moveSink    func(array int64, payload []byte)
	locSink     func(payload []byte)
	eagerMax    int

	xferMu   sync.Mutex
	xfers    map[int64]*pendingXfer
	nextXfer int64

	errMu sync.Mutex
	errs  []error

	repMu   sync.Mutex
	reports []peerReport // by rank; [n.rank] unused

	stopC chan struct{}
}

// pendingXfer is a rendezvous payload parked on the sender until the
// receiver's CTS arrives.
type pendingXfer struct {
	rank    int
	payload []byte
}

// peerReport is one rank's last termination report.
type peerReport struct {
	epoch int64
	idle  bool
	s, r  int64
}

// NewRuntime builds the runtime for the next run generation: a local
// realrt runtime hosting this process's share of npes global PEs. The
// PE block of rank r is [r*npes/world, (r+1)*npes/world), so every
// process derives the identical mapping from npes alone.
func (n *Node) NewRuntime(npes int) (*Runtime, error) {
	if npes < n.world {
		return nil, &NetError{Rank: n.rank, Peer: -1, Op: "bootstrap",
			Err: fmt.Errorf("fewer PEs than processes: cannot host %d PEs on %d ranks", npes, n.world)}
	}
	lo := n.rank * npes / n.world
	hi := (n.rank + 1) * npes / n.world
	n.mu.Lock()
	gen := n.nextGen
	n.nextGen++
	dead := n.deadErr
	n.mu.Unlock()
	rt := &Runtime{
		node:     n,
		gen:      gen,
		npes:     npes,
		lo:       lo,
		hi:       hi,
		rt:       realrt.New(hi - lo),
		eagerMax: n.eagerMax,
		xfers:    make(map[int64]*pendingXfer),
		reports:  make([]peerReport, n.world),
		stopC:    make(chan struct{}),
	}
	rt.rt.StallTimeout = n.cfg.StallTimeout
	if n.world > 1 {
		// The standing hold credit; see the type comment. Taken as a
		// realrt Hold so the stall watchdog knows an idle rank parked
		// on it alone is waiting on the world, not deadlocked.
		rt.rt.Hold()
	}
	if dead != nil {
		rt.abort(dead)
	}
	// Not attached yet: frames for this generation buffer in the node
	// until Run(), which attaches after the deliver/put hooks are set.
	return rt, nil
}

// Rank, World, NumPEs, Lo and Hi describe the placement.
func (rt *Runtime) Rank() int   { return rt.node.rank }
func (rt *Runtime) World() int  { return rt.node.world }
func (rt *Runtime) NumPEs() int { return rt.npes }
func (rt *Runtime) Lo() int     { return rt.lo }
func (rt *Runtime) Hi() int     { return rt.hi }

// Hosts reports whether the global PE lives on this process.
func (rt *Runtime) Hosts(pe int) bool { return pe >= rt.lo && pe < rt.hi }

// RankOf returns the rank hosting a global PE.
func (rt *Runtime) RankOf(pe int) int {
	// Inverse of the block mapping; a loop keeps it exact for every
	// npes/world split without floor-division edge cases.
	for r := 0; r < rt.node.world; r++ {
		if pe < (r+1)*rt.npes/rt.node.world {
			return r
		}
	}
	return rt.node.world - 1
}

func (rt *Runtime) localOf(pe int) int {
	if !rt.Hosts(pe) {
		panic(fmt.Sprintf("netrt: PE %d is not hosted by rank %d (PEs [%d,%d))", pe, rt.node.rank, rt.lo, rt.hi))
	}
	return pe - rt.lo
}

// SetDeliver installs the handler for inbound Charm envelopes. It runs
// on connection reader goroutines; the handler must re-enqueue onto the
// destination PE rather than execute in place. The envelope is passed by
// value so the hot eager path heap-allocates nothing for it. When pooled
// is non-nil, the envelope's Data (and the encoded bytes it aliases)
// live in that pooled buffer, and the handler owns it: it must
// bufpool.Put(pooled) after the last handler touching the envelope
// completes. With pooled nil the envelope owns plain heap memory and the
// GC handles it.
func (rt *Runtime) SetDeliver(fn func(env Env, pooled []byte)) { rt.deliver = fn }

// SetPutSink installs the handler for inbound one-sided put frames
// (id = CkDirect handle id, payload = raw source bytes). It serves
// replayed buffered frames and worlds without a streaming sink.
func (rt *Runtime) SetPutSink(fn func(id int64, payload []byte)) { rt.putSink = fn }

// SetPutStream installs the zero-copy inbound put path: the sink reads
// exactly size payload bytes from r straight into the preregistered
// destination region. A sink that cannot accept the put (unknown id,
// size mismatch) must still consume exactly size bytes to keep the
// stream in sync and report the condition out of band; a returned error
// means the stream itself failed and the connection dies.
func (rt *Runtime) SetPutStream(fn func(id int64, size int, r io.Reader) error) { rt.putStream = fn }

// SetPutDoorbell installs the handler for shm direct-deposit doorbells:
// the sender already memcpy'd the put body into the receiver's
// registered buffer through the shared mapping, and the doorbell
// carries only the handle id and the sentinel word to release-store.
func (rt *Runtime) SetPutDoorbell(fn func(id int64, last uint64)) { rt.putDoorbell = fn }

// SetMoveSink installs the handler for inbound element-migration
// frames (array = ordinal, payload = index + packed state). It runs on
// connection reader goroutines; the payload is only valid during the
// call, so the sink must copy what it keeps and re-enqueue the actual
// application onto a local PE — that Enqueue is also the work credit
// that keeps termination honest (taken before the frame's receipt is
// counted).
func (rt *Runtime) SetMoveSink(fn func(array int64, payload []byte)) { rt.moveSink = fn }

// SetLocSink installs the handler for inbound location-update (load
// balancing plan) broadcasts. Same contract as SetMoveSink: reader
// goroutine, payload valid only during the call, credit work before
// returning.
func (rt *Runtime) SetLocSink(fn func(payload []byte)) { rt.locSink = fn }

// SetPoll installs the CkDirect poll hook, translating the local PE
// index the scheduler passes back to the global PE space.
func (rt *Runtime) SetPoll(fn func(pe int, full bool) bool) {
	lo := rt.lo
	rt.rt.SetPoll(func(lpe int, full bool) bool { return fn(lo+lpe, full) })
}

// Enqueue schedules work on a locally hosted global PE.
func (rt *Runtime) Enqueue(pe int, fn func()) { rt.rt.Enqueue(rt.localOf(pe), fn) }

// After schedules a task on a locally hosted global PE after a delay.
func (rt *Runtime) After(pe int, d sim.Time, fn func()) { rt.rt.After(rt.localOf(pe), d, fn) }

// Kick wakes a locally hosted global PE's poll loop.
func (rt *Runtime) Kick(pe int) { rt.rt.Kick(rt.localOf(pe)) }

// Now returns local wall-clock time since the runtime was built.
func (rt *Runtime) Now() sim.Time { return rt.rt.Now() }

// Executed returns the local completed-task count.
func (rt *Runtime) Executed() uint64 { return rt.rt.Executed() }

// PutIssued and PutDetected expose the local work-credit pair.
func (rt *Runtime) PutIssued()   { rt.rt.PutIssued() }
func (rt *Runtime) PutDetected() { rt.rt.PutDetected() }

// SendMsg ships one Charm envelope to the process hosting env.DstPE:
// an eager frame when the encoding fits the threshold, a rendezvous
// RTS/CTS/data exchange otherwise.
func (rt *Runtime) SendMsg(env *Env) {
	dst := rt.RankOf(env.DstPE)
	limit := rt.eagerMax
	if t := rt.node.peerTable(); t != nil && dst < len(t) && t[dst] != nil {
		// The per-peer adaptive threshold: a congested edge (deep
		// outbox) pushes mid-size messages onto the rendezvous path so
		// its consumer drains, and recovers toward the configured
		// threshold when the backlog clears.
		limit = t[dst].eagerLimit(limit)
	}
	if EnvWireSize(env) <= limit {
		// Eager fast path: header and envelope encode in one pass into
		// one pooled frame buffer (sendEnv) — no intermediate encode.
		rt.sent.Add(1)
		rt.node.sendEnv(dst, FEager, rt.gen, env)
		return
	}
	// Rendezvous: the payload parks in xfers until the CTS arrives, for
	// an unbounded time — plain heap memory, so it cannot pin the pool.
	b := EncodeEnv(env)
	rt.xferMu.Lock()
	id := rt.nextXfer
	rt.nextXfer++
	rt.xfers[id] = &pendingXfer{rank: dst, payload: b}
	rt.xferMu.Unlock()
	// The send counter rises at RTS time: the transfer is outstanding
	// from the moment it is requested, so termination cannot conclude
	// between the RTS and the data frame.
	rt.sent.Add(1)
	rt.node.sendTo(dst, &Frame{Type: FRTS, Run: rt.gen, A: id, B: int64(len(b))})
}

// SendCast ships one broadcast envelope to every other process; each
// receiver fans it out to its local elements of the array.
func (rt *Runtime) SendCast(env *Env) {
	for r := 0; r < rt.node.world; r++ {
		if r == rt.node.rank {
			continue
		}
		rt.sent.Add(1)
		rt.node.sendEnv(r, FCast, rt.gen, env)
	}
}

// SendPut ships a one-sided put: the raw source bytes, addressed by the
// SPMD-identical CkDirect handle id. EncodeFrame copies the payload, so
// the caller may reuse (or let the application overwrite) the source
// buffer as soon as SendPut returns — matching the local-completion
// semantics of the real backend's put.
func (rt *Runtime) SendPut(dstPE int, handleID int64, payload []byte) {
	rank := rt.RankOf(dstPE)
	if t := rt.node.peerTable(); t != nil && t[rank] != nil && t[rank].directPut(rt.gen, handleID, payload) {
		// Direct deposit: the body is already in the receiver's
		// registered buffer through the shared mapping and only a
		// 48-byte doorbell rode the ring. The doorbell is a counted
		// app frame, same as the full put it replaces.
		rt.sent.Add(1)
		return
	}
	rt.sent.Add(1)
	rt.node.sendTo(rank, &Frame{Type: FPut, Run: rt.gen, A: handleID, Payload: payload})
}

// SendMove ships a migrating element's packed state to the rank that
// now hosts it. The frame copies the payload at encode time, so the
// caller's buffer is free on return.
func (rt *Runtime) SendMove(rank int, array int64, payload []byte) {
	rt.sent.Add(1)
	rt.node.sendTo(rank, &Frame{Type: FMove, Run: rt.gen, A: array, Payload: payload})
}

// SendLoc broadcasts an encoded load-balancing plan to every other
// rank; each receiver applies the identical location updates.
func (rt *Runtime) SendLoc(payload []byte) {
	for r := 0; r < rt.node.world; r++ {
		if r == rt.node.rank {
			continue
		}
		rt.sent.Add(1)
		rt.node.sendTo(r, &Frame{Type: FLoc, Run: rt.gen, Payload: payload})
	}
}

// AllocPutRegion carves a CkDirect destination buffer out of the shm
// arena shared with rank (the sender-to-be), so that sender's puts can
// land by plain memcpy. Returns the arena-backed slice, its offset for
// registration, and ok=false when no shm link (or arena space) exists
// toward that rank — the caller then keeps its ordinary heap buffer.
func (rt *Runtime) AllocPutRegion(rank, size int) ([]byte, int64, bool) {
	if rank == rt.node.rank || size < 8 || size%8 != 0 {
		return nil, 0, false
	}
	t := rt.node.peerTable()
	if t == nil || rank < 0 || rank >= len(t) || t[rank] == nil {
		return nil, 0, false
	}
	return t[rank].allocArena(rt.gen, size)
}

// RegisterPutBuffer advertises an arena-resident destination buffer to
// the sending rank: puts into handle id may henceforth be deposited at
// arena offset off (size bytes, sentinel in the last 8). Control
// traffic on the TCP stream — uncounted, ordered before nothing; a put
// that races ahead of the registration simply takes the frame path
// into the very same rebound buffer.
func (rt *Runtime) RegisterPutBuffer(rank int, id, off, size int64) bool {
	return rt.node.sendTo(rank, &Frame{Type: FShmReg, Run: rt.gen, A: id, B: off, C: size})
}

// DropPutBuffer invalidates any shared-memory put registration this
// process holds for handle id, toward every peer: subsequent puts on
// that channel take the framed path. Called on every rank when a
// channel's receive endpoint migrates (SPMD bookkeeping) — the old
// arena slot must stop accepting deposits the moment the cut applies.
func (rt *Runtime) DropPutBuffer(id int64) {
	t := rt.node.peerTable()
	if t == nil {
		return
	}
	for _, p := range t {
		if p != nil {
			p.dropReg(id)
		}
	}
}

// handleApp processes one app frame for this run. It runs on connection
// reader goroutines. The credit discipline: any work the frame creates
// is credited (Enqueue/PutIssued) BEFORE recv is incremented, so a
// probe that sees matched sums cannot race ahead of uncredited work.
//
// pooled reports whether f.Payload is a reader-owned pool buffer; the
// return value is true only when ownership of that buffer moved onward
// (an eager deliver whose consumer will Put it back). Replayed buffered
// frames arrive with pooled=false and plain heap payloads.
func (rt *Runtime) handleApp(rank int, f Frame, pooled bool) bool {
	if rt.aborted.Load() {
		// An aborting run must not create local work: releasing the hold
		// credit lets the scheduler observe quiescence and unwind, and a
		// late frame from a peer that has not noticed the failure yet
		// would Enqueue onto workers that may already have exited.
		return false
	}
	switch f.Type {
	case FEager, FData:
		// FData is a granted rendezvous body; the RTS was counted at
		// issue, the data frame itself is the one counted receipt.
		// The envelope aliases the payload bytes in place (no decode
		// copy); with a pooled payload, ownership rides along and the
		// deliver consumer returns the buffer after the handler runs.
		env, err := DecodeEnvShared(f.Payload)
		if err != nil {
			rt.abort(&NetError{Rank: rt.node.rank, Peer: rank, Op: "read", Err: err})
			return false
		}
		consumed := false
		if rt.deliver != nil {
			if pooled {
				rt.deliver(env, f.Payload)
				consumed = true
			} else {
				rt.deliver(env, nil)
			}
		}
		rt.recv.Add(1)
		return consumed
	case FRTS:
		// Grant immediately: the socket-emulated receiver has no memory
		// registration to perform, so CTS is just flow-control echo.
		rt.node.sendTo(rank, &Frame{Type: FCTS, Run: rt.gen, A: f.A})
	case FCTS:
		rt.xferMu.Lock()
		x := rt.xfers[f.A]
		delete(rt.xfers, f.A)
		rt.xferMu.Unlock()
		if x != nil {
			// Off the reader goroutine: a large data frame may block on a
			// full outbox, and a reader must never block on sending.
			go rt.node.sendTo(x.rank, &Frame{Type: FData, Run: rt.gen, A: f.A, Payload: x.payload})
		}
	case FPut:
		if f.B == shmPutDoorbell {
			// Direct-deposit doorbell: the body already sits in the
			// registered buffer via the shared mapping; only the
			// sentinel release remains. C carries the sentinel word.
			if rt.putDoorbell != nil {
				rt.putDoorbell(f.A, uint64(f.C))
			}
			rt.recv.Add(1)
			return false
		}
		// Non-streamed put (replayed buffered frame, or no streaming sink
		// installed): the sink deposits synchronously, so the payload is
		// done with when it returns and the reader reclaims it.
		if rt.putSink != nil {
			rt.putSink(f.A, f.Payload)
		}
		rt.recv.Add(1)
	case FCast:
		// A broadcast fans out to every local element — a multi-consumer
		// payload with no single release point — so the decode copies
		// and the reader reclaims the wire buffer immediately.
		env, err := DecodeEnv(f.Payload)
		if err != nil {
			rt.abort(&NetError{Rank: rt.node.rank, Peer: rank, Op: "read", Err: err})
			return false
		}
		if rt.deliver != nil {
			rt.deliver(env, nil)
		}
		rt.recv.Add(1)
	case FMove:
		// The sink copies the payload and enqueues the unpack onto a
		// local PE before returning — the credit-before-recv discipline.
		if rt.moveSink != nil {
			rt.moveSink(f.A, f.Payload)
		}
		rt.recv.Add(1)
	case FLoc:
		if rt.locSink != nil {
			rt.locSink(f.Payload)
		}
		rt.recv.Add(1)
	}
	return false
}

// localReport captures this process's termination state: idle when the
// run has started and the only outstanding work credit is the standing
// hold, plus the app-frame counters.
func (rt *Runtime) localReport() (idle bool, s, r int64) {
	idle = rt.started.Load() && rt.rt.Outstanding() == 1
	return idle, rt.sent.Load(), rt.recv.Load()
}

// noteReport records a peer's answer to a termination probe.
func (rt *Runtime) noteReport(rank int, f Frame) {
	rt.repMu.Lock()
	rt.reports[rank] = peerReport{epoch: f.A, idle: f.B == 1, s: f.C, r: f.D}
	rt.repMu.Unlock()
}

// Run executes the run generation to distributed completion and returns
// the local realrt elapsed time. Rank 0 drives termination detection;
// every rank's local scheduler drains once its hold credit is released
// by the coordinator's halt (or by an abort).
func (rt *Runtime) Run() sim.Time {
	rt.node.attach(rt)
	rt.started.Store(true)
	if rt.node.rank == 0 && rt.node.world > 1 {
		go rt.coordinate()
	}
	d := rt.rt.Run()
	close(rt.stopC)
	rt.node.detach(rt)
	return d
}

// coordinate is rank 0's termination loop: each epoch, probe the root's
// children in the k-ary termination tree (every other rank's report
// arrives pre-aggregated up that tree — see term.go), and halt only
// after two consecutive epochs in which every subtree was idle and the
// global sent/received sums matched and did not change — the second
// round proves no frame was in flight past the first.
func (rt *Runtime) coordinate() {
	tick := time.NewTicker(1 * time.Millisecond)
	defer tick.Stop()
	kids := termChildren(0, rt.node.termFanout, rt.node.world)
	var epoch int64
	var stable int
	var lastS, lastR int64 = -1, -1
	for {
		select {
		case <-rt.stopC:
			return
		case <-tick.C:
		}
		if rt.aborted.Load() {
			return
		}
		epoch++
		rt.node.probeRounds.Add(1)
		probe := Frame{Type: FProbe, Run: rt.gen, A: epoch}
		for _, r := range kids {
			rt.node.sendTo(r, &probe)
		}
		// Wait (bounded) for every subtree's report for this epoch.
		deadline := time.Now().Add(250 * time.Millisecond)
		for {
			if rt.epochComplete(epoch, kids) {
				break
			}
			if time.Now().After(deadline) || rt.aborted.Load() {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if !rt.epochComplete(epoch, kids) {
			stable = 0
			continue
		}
		idle, s, r := rt.localReport()
		allIdle := idle
		rt.repMu.Lock()
		for _, rank := range kids {
			rep := rt.reports[rank]
			allIdle = allIdle && rep.idle
			s += rep.s
			r += rep.r
		}
		rt.repMu.Unlock()
		if allIdle && s == r && s == lastS && r == lastR {
			stable++
		} else {
			stable = 0
		}
		lastS, lastR = s, r
		if stable >= 1 {
			// Two consecutive matching epochs (this one and the one that
			// set lastS/lastR): globally terminated.
			rt.haltAll(kids)
			return
		}
	}
}

// epochComplete reports whether every root-child subtree has answered
// the given probe epoch.
func (rt *Runtime) epochComplete(epoch int64, kids []int) bool {
	rt.repMu.Lock()
	defer rt.repMu.Unlock()
	for _, rank := range kids {
		if rt.reports[rank].epoch != epoch {
			return false
		}
	}
	return true
}

// haltAll announces termination down the tree and releases the local
// hold; interior ranks forward the halt to their own children.
func (rt *Runtime) haltAll(kids []int) {
	f := Frame{Type: FHalt, Run: rt.gen}
	for _, r := range kids {
		rt.node.sendTo(r, &f)
	}
	rt.halt()
}

// halt releases the standing hold credit, letting the local scheduler
// observe quiescence and return from Run.
func (rt *Runtime) halt() {
	if rt.node.world > 1 && rt.holdReleased.CompareAndSwap(false, true) {
		rt.rt.Release()
	}
}

// abort records a fatal error and forces the run to unwind: the hold
// credit is released so the local scheduler drains and Run returns,
// with the error waiting in Errors.
func (rt *Runtime) abort(err error) {
	rt.errMu.Lock()
	rt.errs = append(rt.errs, err)
	rt.errMu.Unlock()
	rt.aborted.Store(true)
	rt.halt()
}

// Aborted reports whether the run was aborted.
func (rt *Runtime) Aborted() bool { return rt.aborted.Load() }

// Errors returns the fatal errors recorded during the run.
func (rt *Runtime) Errors() []error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return append([]error(nil), rt.errs...)
}
