package netrt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestJobFrameRoundTrip drives the service-mode control path over a
// real in-process mesh: the coordinator broadcasts a job announcement,
// every worker receives it on its job channel and reports back, and the
// coordinator collects one FJobDone per worker.
func TestJobFrameRoundTrip(t *testing.T) {
	const world = 3
	nodes, err := StartLocal(world)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Workers must be draining before the broadcast: job frames are
	// control traffic with a non-blocking push, so a never-created
	// channel counts the frame dropped rather than buffering it.
	type report struct {
		rank int
		seq  int64
		body string
	}
	reports := make(chan report, world)
	for r := 1; r < world; r++ {
		n := nodes[r]
		go func() {
			for jf := range n.JobFrames() {
				if jf.Done {
					continue
				}
				reports <- report{rank: n.Rank(), seq: jf.Seq, body: string(jf.Payload)}
				n.SendJobDone(jf.Seq, []byte(fmt.Sprintf("ok from %d", n.Rank())))
			}
		}()
	}
	coordC := nodes[0].JobFrames()

	spec := []byte(`{"kind":"pingpong"}`)
	if sent := nodes[0].BroadcastJob(7, spec); sent != world-1 {
		t.Fatalf("BroadcastJob sent to %d ranks, want %d", sent, world-1)
	}

	seen := map[int]bool{}
	deadline := time.After(5 * time.Second)
	for len(seen) < world-1 {
		select {
		case rep := <-reports:
			if rep.seq != 7 || rep.body != `{"kind":"pingpong"}` {
				t.Fatalf("worker %d got seq=%d body=%q", rep.rank, rep.seq, rep.body)
			}
			seen[rep.rank] = true
		case <-deadline:
			t.Fatalf("workers that saw the job: %v", seen)
		}
	}

	done := map[int]bool{}
	for len(done) < world-1 {
		select {
		case jf := <-coordC:
			if !jf.Done {
				t.Fatalf("coordinator got a non-done job frame: %+v", jf)
			}
			if jf.Seq != 7 {
				t.Fatalf("done report for seq %d, want 7", jf.Seq)
			}
			if want := fmt.Sprintf("ok from %d", jf.Rank); string(jf.Payload) != want {
				t.Fatalf("done payload %q, want %q", jf.Payload, want)
			}
			done[jf.Rank] = true
		case <-deadline:
			t.Fatalf("coordinator saw done reports from: %v", done)
		}
	}

	for _, n := range nodes {
		if d := atomic.LoadInt64(&n.jobDrop); d != 0 {
			t.Errorf("rank %d dropped %d job frames", n.Rank(), d)
		}
	}
}
