package netrt

import "sync"

// StartLocal brings up a full world inside one process: rank 0
// coordinates on an ephemeral loopback port and every other rank dials
// in, exactly as separate OS processes would — sockets, frames and
// termination detection all run for real. Real deployments run one
// process per rank (self-spawn or explicit launch); in-process worlds
// serve tests and single-host experiments that want the complete wire
// stack without process management.
func StartLocal(world int) ([]*Node, error) {
	return StartLocalConfig(world, Config{})
}

// StartLocalConfig is StartLocal with extra settings applied to every
// rank — recovery tests set Recover and OnRespawn. Rank, World, Coord
// and OnListen belong to the bootstrap and are overwritten.
func StartLocalConfig(world int, base Config) ([]*Node, error) {
	if world <= 1 {
		cfg := base
		cfg.Rank, cfg.World = 0, 1
		n, err := Start(cfg)
		if err != nil {
			return nil, err
		}
		return []*Node{n}, nil
	}
	nodes := make([]*Node, world)
	errs := make([]error, world)
	addrC := make(chan string, 1)
	done0 := make(chan struct{})
	go func() {
		defer close(done0)
		cfg := base
		cfg.Rank, cfg.World, cfg.Coord = 0, world, "127.0.0.1:0"
		cfg.OnListen = func(a string) { addrC <- a }
		nodes[0], errs[0] = Start(cfg)
	}()
	var addr string
	select {
	case addr = <-addrC:
	case <-done0:
		// Rank 0 failed before binding its listener.
		return nil, errs[0]
	}
	var wg sync.WaitGroup
	for r := 1; r < world; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := base
			cfg.Rank, cfg.World, cfg.Coord = r, world, addr
			cfg.OnListen = nil
			nodes[r], errs[r] = Start(cfg)
		}()
	}
	wg.Wait()
	<-done0
	for _, err := range errs {
		if err != nil {
			for _, n := range nodes {
				if n != nil {
					n.Close()
				}
			}
			return nil, err
		}
	}
	return nodes, nil
}
