package netrt

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

// testRing builds a ring over heap memory — the unit-test stand-in for
// a mapped segment; the atomics work identically either way.
func testRing(t *testing.T, capacity int) *shmRing {
	t.Helper()
	r, err := newShmRing(make([]byte, shmRingHdrBytes+capacity))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestShmRingRejectsBadRegions(t *testing.T) {
	if _, err := newShmRing(make([]byte, shmRingHdrBytes)); err == nil {
		t.Error("accepted a region with no data window")
	}
	if _, err := newShmRing(make([]byte, shmRingHdrBytes+100)); err == nil {
		t.Error("accepted a non-power-of-two capacity")
	}
	if _, err := newShmRing(make([]byte, shmRingHdrBytes+4096)); err != nil {
		t.Errorf("rejected a valid region: %v", err)
	}
}

// TestShmRingRoundtrip streams a mixed batch of frames through a small
// ring with a concurrent consumer and checks the byte stream arrives
// intact and in order — including frames larger than the ring, which
// must chunk through as the consumer drains.
func TestShmRingRoundtrip(t *testing.T) {
	const capacity = 4096
	ring := testRing(t, capacity)
	down := make(chan struct{})
	defer close(down)

	rng := rand.New(rand.NewSource(7))
	var want bytes.Buffer
	sizes := []int{1, 8, 48, capacity - 1, capacity, capacity + 1, 3 * capacity, 5, 64 << 10}
	var chunks [][]byte
	for i, s := range sizes {
		b := make([]byte, s)
		rng.Read(b)
		b[0] = byte(i)
		want.Write(b)
		chunks = append(chunks, b)
	}

	got := make([]byte, want.Len())
	readDone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(bufio.NewReaderSize(&shmRingReader{ring: ring, down: down}, 4096), got)
		readDone <- err
	}()
	for _, c := range chunks {
		if !ring.write(c, down) {
			t.Error("write reported a dead link")
		}
	}
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer hung")
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("byte stream corrupted through the ring")
	}
}

// TestShmRingWriterUnblocksOnDown fills the ring with no consumer, then
// closes the down latch: the blocked writer must return false instead
// of spinning forever.
func TestShmRingWriterUnblocksOnDown(t *testing.T) {
	ring := testRing(t, 4096)
	down := make(chan struct{})
	if !ring.write(make([]byte, 4096), down) {
		t.Fatal("fill write failed on a live ring")
	}
	res := make(chan bool, 1)
	go func() { res <- ring.write([]byte{1}, down) }()
	time.Sleep(10 * time.Millisecond)
	close(down)
	select {
	case ok := <-res:
		if ok {
			t.Fatal("write claimed success after down")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer still blocked after down")
	}
}

// TestShmRingClosedFlag checks the shared closed flag both ways: a
// blocked writer aborts, and a reader returns EOF only after draining
// what was already published (a close must not eat delivered frames).
func TestShmRingClosedFlag(t *testing.T) {
	ring := testRing(t, 4096)
	down := make(chan struct{})
	defer close(down)
	if !ring.write([]byte{1, 2, 3}, down) {
		t.Fatal("write failed on a live ring")
	}
	ring.closed.store(1)
	if !ring.write(make([]byte, 4093), down) {
		t.Fatal("fitting write must still land on a closed ring")
	}
	if ring.write([]byte{9}, down) {
		t.Fatal("blocked write claimed success on a closed full ring")
	}
	rr := &shmRingReader{ring: ring, down: down}
	got := make([]byte, 4096)
	if _, err := io.ReadFull(rr, got); err != nil || !bytes.Equal(got[:3], []byte{1, 2, 3}) {
		t.Fatalf("drain after close: got %v, %v", got[:3], err)
	}
	if _, err := rr.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read on drained closed ring: %v, want EOF", err)
	}
}
