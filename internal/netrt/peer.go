package netrt

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
)

// Connection tuning.
const (
	// outboxCap bounds the per-peer send queue; a producer that fills it
	// blocks, which is TCP backpressure surfaced to the runtime.
	outboxCap = 4096
	// ioBufBytes sizes the per-connection read buffer.
	ioBufBytes = 64 << 10
	// The writev batch window adapts per peer between minBatchFrames
	// and maxBatchFrames (starting at initBatchFrames): a window that
	// fills doubles (deep fan-in wants fewer, larger writevs), and
	// batchShrinkStreak consecutive single-frame batches halve it back
	// (a latency-bound edge wants the syscall now, and a small window
	// keeps the kernel from waiting on a batch that will never fill).
	// maxBatchFrames still bounds the writer's retained state: the
	// batch arrays hold at most maxBatchFrames slice headers (the frame
	// bytes themselves are pooled buffers returned right after the
	// writev), so a burst cannot permanently grow the writer beyond
	// ~2*maxBatchFrames headers — that fixed cap IS the shrink policy
	// for memory (see DESIGN.md §9); the window only tunes syscall
	// coalescing within it.
	minBatchFrames    = 8
	initBatchFrames   = 32
	maxBatchFrames    = 256
	batchShrinkStreak = 16
	// eagerFloor and eagerCheckEvery shape the per-peer adaptive eager
	// threshold (eagerLimit): when an edge's outbox runs deep the
	// threshold halves toward eagerFloor — mid-size messages divert to
	// the rendezvous path, whose RTS/CTS round trip is natural flow
	// control — and recovers toward the configured base once the
	// backlog clears. The queue depth is sampled every
	// eagerCheckEvery-th send so the hot path stays two atomic ops.
	eagerFloor      = 256
	eagerCheckEvery = 64
	// keepaliveEvery paces idle FPing frames.
	keepaliveEvery = 500 * time.Millisecond
	// peerTimeout is how long a silent peer stays healthy. Keepalives
	// flow every keepaliveEvery, so a peer silent this long is dead or
	// wedged, not idle.
	peerTimeout = 10 * time.Second
	// dialAttempts and dialBaseDelay shape the bootstrap dial retry:
	// exponential backoff with jitter, roughly 25ms..13s total.
	dialAttempts  = 10
	dialBaseDelay = 25 * time.Millisecond
	dialTimeout   = 3 * time.Second
	// dialMaxDelay caps the backoff window: without it the doubling
	// grows without bound, and a restarting rank that retries long
	// enough ends up sleeping for minutes between attempts. The cap
	// also keeps the jittered sleeps of many simultaneous re-dialers
	// spread across a bounded window instead of an ever-wider one.
	dialMaxDelay = 2 * time.Second
	// rejoinDialAttempts stretches the retry budget for Rejoin: the
	// coordinator may spend several seconds reaping and respawning a
	// dead rank before it starts accepting, and with the capped backoff
	// this is roughly a 30-second window.
	rejoinDialAttempts = 20
)

// peerConn is one live connection to a peer rank: a batching writer
// goroutine fed by an outbox channel, a reader goroutine that decodes
// frames into the node's dispatch, and a keepalive ticker that doubles
// as the health monitor.
type peerConn struct {
	node  *Node
	rank  int
	epoch int64 // mesh incarnation this connection belongs to
	conn  net.Conn
	br    *bufio.Reader

	out  chan []byte
	down chan struct{}

	started  bool // connection goroutines are running (set in start)
	failed   atomic.Bool
	quiet    atomic.Bool // graceful close: suppress the read-error report
	lastRecv atomic.Int64

	// shm, when set, is the shared-memory link negotiated for this edge
	// at bootstrap: app frames ride its ring (the TCP connection keeps
	// carrying control traffic, whose EOF is the death signal), and
	// registered puts deposit into its arena.
	shm atomic.Pointer[shmLink]

	// regs records the peer's FShmReg put-buffer registrations (by
	// handle id); directPut consults them.
	regMu sync.Mutex
	regs  map[int64]shmPutReg

	// arenaGen/arenaOff are the bump allocator over the inbound arena —
	// where THIS process places registered receive buffers for the peer
	// to deposit into. The bump resets when a new run generation first
	// allocates (termination proved the old puts drained).
	arenaMu  sync.Mutex
	arenaGen int64
	arenaOff int

	// eagerCur/eagerTick drive the adaptive eager threshold for this
	// edge; see eagerLimit. eagerCur==0 means "at the configured base".
	eagerCur  atomic.Int64
	eagerTick atomic.Int64
}

func newPeerConn(n *Node, rank int, conn net.Conn) *peerConn {
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are already batched by the writer; leaving Nagle on
		// would add a delayed-ack round trip to every pingpong.
		tc.SetNoDelay(true)
	}
	p := &peerConn{
		node:  n,
		rank:  rank,
		epoch: n.epoch.Load(),
		conn:  conn,
		br:    bufio.NewReaderSize(conn, ioBufBytes),
		out:   make(chan []byte, outboxCap),
		down:  make(chan struct{}),
	}
	p.lastRecv.Store(time.Now().UnixNano())
	return p
}

// start launches the connection goroutines. Called once bootstrap
// handshakes on this connection are complete. An edge with a shared
// segment gets a fourth goroutine: the ring reader, running the same
// frame loop as the TCP reader over the inbound ring.
func (p *peerConn) start() {
	p.started = true
	go p.writer()
	go p.reader()
	go p.keepalive()
	if l := p.shm.Load(); l != nil {
		go p.ringReader(l)
	}
}

// isAppFrame reports whether a frame type carries program traffic —
// the classes that ride the shared-memory ring when the edge has one.
// Control traffic stays on TCP: its relative order against app frames
// is immaterial (termination is counter-based, probes are idempotent,
// and FHalt/FLeave only fire after the counters prove app traffic
// drained), while the socket's EOF remains the instant death signal.
func isAppFrame(t byte) bool {
	switch t {
	case FEager, FRTS, FCTS, FData, FPut, FCast:
		return true
	}
	return false
}

// send queues an encoded frame, blocking on a full outbox. It reports
// false when the peer is down; the caller's failure handling already
// ran (or is running) via peerDown, so dropping the frame is correct —
// the run is aborting. On true the frame belongs to the connection:
// either the writer writes-and-Puts it, or the teardown drain Puts it.
//
// App frames on an shm edge take the ring instead: the bytes are
// copied into the segment synchronously (the ring write IS the wire
// write — no goroutine handoff, no syscall) and the pooled buffer is
// reclaimed here, keeping the pool ledger identical across transports.
func (p *peerConn) send(b []byte) bool {
	if l := p.shm.Load(); l != nil && isAppFrame(b[3]) {
		if !l.writeFrame(b, p.down) {
			return false
		}
		bufpool.Put(b)
		return true
	}
	select {
	case p.out <- b:
	case <-p.down:
		return false
	}
	p.reclaimIfDown()
	return true
}

// reclaimIfDown closes the enqueue/teardown race: when down is closed
// and the outbox has capacity, the enqueuing select may pick the send
// case even though the writer — and its drain — already exited, which
// would strand the frame (a pool leak). Re-checking down after the
// enqueue catches that ordering; each stranded frame is drained by
// exactly one goroutine (channel receive is exclusive), so no double
// Put is possible.
func (p *peerConn) reclaimIfDown() {
	select {
	case <-p.down:
		p.drainOutbox()
	default:
	}
}

// writer drains the outbox into the socket with vectored I/O: queued
// frames coalesce into one net.Buffers writev — no flat copy-assembled
// batch buffer exists — and each frame's pooled buffer goes back to the
// pool the moment the writev covering it returns.
func (p *peerConn) writer() {
	defer p.drainOutbox()
	// owned keeps the original pooled slice headers: Buffers.WriteTo
	// advances its entries as it consumes them, so the batch handed to
	// the kernel cannot double as the Put list. backing is the batch's
	// permanent storage — WriteTo also advances the batch slice itself,
	// so re-appending into the advanced slice would silently reallocate
	// the header array on every round; re-slicing backing restores the
	// full capacity instead.
	owned := make([][]byte, 0, maxBatchFrames)
	backing := make([][]byte, maxBatchFrames)
	var batch net.Buffers
	window := initBatchFrames
	singles := 0
	for {
		var b []byte
		select {
		case b = <-p.out:
		case <-p.down:
			return
		}
		owned = owned[:0]
		closing := false
		for {
			if b == nil {
				// Graceful-close marker queued by close(): everything
				// ahead of it is written; then the socket closes so the
				// peer reads the goodbye, then a clean EOF.
				closing = true
				break
			}
			owned = append(owned, b)
			if len(owned) == window {
				break
			}
			select {
			case b = <-p.out:
				continue
			default:
			}
			break
		}
		// Adapt the window to the observed fan-in: a filled window
		// doubles, a streak of lone frames halves it back.
		switch {
		case len(owned) == window && window < maxBatchFrames:
			window *= 2
			singles = 0
			p.node.batchGrows.Add(1)
		case len(owned) == 1:
			if singles++; singles >= batchShrinkStreak && window > minBatchFrames {
				window /= 2
				singles = 0
				p.node.batchShrinks.Add(1)
			}
		default:
			singles = 0
		}
		if len(owned) > 0 {
			n := copy(backing, owned)
			batch = net.Buffers(backing[:n])
			_, err := batch.WriteTo(p.conn)
			for i, fb := range owned {
				bufpool.Put(fb)
				owned[i] = nil
			}
			if err != nil {
				p.fail("write", err)
				return
			}
		}
		if closing {
			p.shutdown()
			return
		}
	}
}

// drainOutbox returns any frames still queued on a dead connection to
// the pool — the run is aborting, nobody will write them, and leaving
// them checked out would read as a leak to the pool's debug tracking.
func (p *peerConn) drainOutbox() {
	for {
		select {
		case b := <-p.out:
			bufpool.Put(b)
		default:
			return
		}
	}
}

// reader runs the frame loop over the TCP socket.
func (p *peerConn) reader() {
	p.fail("read", p.readLoop(p.br))
}

// ringReader runs the identical frame loop over the inbound shm ring,
// so a frame dispatches byte-for-byte the same whichever transport
// carried it. Stream end — io.EOF once the connection's down latch
// closes or the ring's closed flag rises, io.ErrUnexpectedEOF when the
// close cut a frame mid-body — is NEVER a peer death: the flag can only
// be raised deliberately (the local latch, or the remote's Rejoin/Close
// teardown, whose TCP goodbye may still be in flight), and a crashed
// process cannot raise it at all — its death reaches us as the TCP
// socket's EOF. Reporting ring stream-end through fail() would race the
// remote's FLeave and record a live, gracefully-leaving peer as dead.
// A real protocol error on the ring (corrupt frame) still kills the
// edge exactly as a corrupt TCP stream would.
func (p *peerConn) ringReader(l *shmLink) {
	defer l.markReaderDone()
	br := bufio.NewReaderSize(&shmRingReader{ring: l.in, down: p.down}, ioBufBytes)
	err := p.readLoop(br)
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	p.fail("read", err)
}

// readLoop decodes frames from one transport stream and hands them to
// the node until the stream errors. Only the fixed header+meta is read
// into stack scratch; the payload lands either directly in the
// preregistered destination region (streamed FPut — no intermediate
// copy anywhere) or in a pooled buffer whose ownership passes to
// dispatch when dispatch reports the payload consumed.
func (p *peerConn) readLoop(br *bufio.Reader) error {
	for {
		m, err := readFrameMeta(br)
		if err != nil {
			return err
		}
		p.lastRecv.Store(time.Now().UnixNano())
		if m.typ == FPut && m.payloadLen > 0 {
			handled, err := p.node.streamPut(p, br, m)
			if err != nil {
				return err
			}
			if handled {
				continue
			}
		}
		f := Frame{Type: m.typ, Run: m.run, A: m.a, B: m.b, C: m.c, D: m.d}
		var pooled []byte
		if m.payloadLen > 0 {
			pooled = bufpool.Get(m.payloadLen)
			if _, err := io.ReadFull(br, pooled); err != nil {
				bufpool.Put(pooled)
				return err
			}
			f.Payload = pooled
		}
		if !p.node.dispatch(p, f) && pooled != nil {
			bufpool.Put(pooled)
		}
	}
}

// keepalive sends idle pings and declares the peer dead when nothing —
// not even a ping — arrived for peerTimeout. Each ping is a fresh
// pooled encode: the writer returns every frame it writes to the pool,
// so a single reused ping buffer would be a double Put.
func (p *peerConn) keepalive() {
	t := time.NewTicker(keepaliveEvery)
	defer t.Stop()
	for {
		select {
		case <-p.down:
			return
		case <-t.C:
		}
		ping := appendFrameHeader(bufpool.Get(frameWireLen(0))[:0], FPing, 0, 0, 0, 0, 0, 0)
		select {
		case p.out <- ping:
			p.reclaimIfDown()
		default: // outbox full: traffic is flowing, no ping needed
			bufpool.Put(ping)
		}
		idle := time.Since(time.Unix(0, p.lastRecv.Load()))
		if idle > peerTimeout {
			p.fail("keepalive", &timeoutError{idle: idle})
		}
	}
}

type timeoutError struct{ idle time.Duration }

func (e *timeoutError) Error() string {
	return "no traffic for " + e.idle.Round(time.Millisecond).String()
}

// fail tears the connection down once and reports it to the node.
func (p *peerConn) fail(op string, err error) {
	if !p.failed.CompareAndSwap(false, true) {
		return
	}
	p.conn.Close()
	close(p.down)
	if p.quiet.Load() {
		return
	}
	p.node.peerDown(p, op, err)
}

// shutdown closes the socket without reporting — the quiet half of
// fail, for planned teardown.
func (p *peerConn) shutdown() {
	if p.failed.CompareAndSwap(false, true) {
		p.conn.Close()
		close(p.down)
	}
}

// close shuts the connection down gracefully. With the connection
// goroutines running, a nil marker rides the outbox behind any queued
// frames (the FLeave goodbye in particular): the writer flushes
// everything ahead of it and only then closes the socket, so the peer
// reads the goodbye before the EOF.
func (p *peerConn) close() {
	p.quiet.Store(true)
	if !p.started {
		p.shutdown()
		return
	}
	select {
	case p.out <- nil:
	case <-p.down:
	default:
		// Outbox jammed mid-teardown: hard close rather than block.
		p.shutdown()
	}
}

// eagerLimit returns the adaptive eager/rendezvous threshold toward
// this peer, in [eagerFloor, base]. Shared-memory edges always report
// the base: the ring write is synchronous and has no outbox to run
// deep. For TCP edges the outbox depth is sampled every
// eagerCheckEvery-th call; a backlog past half the outbox halves the
// threshold (diverting mid-size messages to rendezvous, whose CTS
// round trip throttles the producer to the consumer's pace), and a
// drained outbox doubles it back toward the configured base.
func (p *peerConn) eagerLimit(base int) int {
	if p.shm.Load() != nil {
		return base
	}
	cur := int(p.eagerCur.Load())
	if cur == 0 || cur > base {
		cur = base
	}
	if p.eagerTick.Add(1)%eagerCheckEvery != 0 {
		return cur
	}
	q := len(p.out)
	switch {
	case q > outboxCap/2 && cur > eagerFloor:
		if cur /= 2; cur < eagerFloor {
			cur = eagerFloor
		}
		p.node.eagerShrinks.Add(1)
	case q < outboxCap/8 && cur < base:
		if cur *= 2; cur > base {
			cur = base
		}
	}
	p.eagerCur.Store(int64(cur))
	return cur
}

// dialRetry dials addr with exponential backoff and jitter — worker
// processes race the coordinator's listen during bootstrap, and a
// refused connection a few milliseconds in is expected, not fatal.
func (n *Node) dialRetry(addr string) (net.Conn, error) {
	return n.dialRetryN(addr, dialAttempts)
}

// dialRetryN is dialRetry with a caller-chosen attempt budget (Rejoin
// uses a longer one). The backoff doubles up to dialMaxDelay and never
// past it, so many ranks re-dialing a restarting coordinator stay
// jittered across a bounded window instead of thundering in ever-wider
// synchronized bursts. Jitter draws from the node's seeded per-rank
// stream, not the global math/rand source: every rank of a world gets
// an independent, reproducible schedule instead of whatever the
// process-wide generator happens to hold.
func (n *Node) dialRetryN(addr string, attempts int) (net.Conn, error) {
	var lastErr error
	delay := dialBaseDelay
	for attempt := 0; attempt < attempts; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		// Full jitter: sleep a uniform fraction of the doubling window
		// so simultaneous dialers do not reconverge on the same instant.
		time.Sleep(time.Duration(n.rand64()%uint64(delay)) + delay/2)
		if delay < dialMaxDelay {
			delay *= 2
			if delay > dialMaxDelay {
				delay = dialMaxDelay
			}
		}
	}
	return nil, lastErr
}