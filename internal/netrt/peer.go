package netrt

import (
	"bufio"
	"math/rand"
	"net"
	"sync/atomic"
	"time"
)

// Connection tuning.
const (
	// outboxCap bounds the per-peer send queue; a producer that fills it
	// blocks, which is TCP backpressure surfaced to the runtime.
	outboxCap = 4096
	// ioBufBytes sizes the per-connection read and write buffers.
	ioBufBytes = 64 << 10
	// keepaliveEvery paces idle FPing frames.
	keepaliveEvery = 500 * time.Millisecond
	// peerTimeout is how long a silent peer stays healthy. Keepalives
	// flow every keepaliveEvery, so a peer silent this long is dead or
	// wedged, not idle.
	peerTimeout = 10 * time.Second
	// dialAttempts and dialBaseDelay shape the bootstrap dial retry:
	// exponential backoff with jitter, roughly 25ms..13s total.
	dialAttempts  = 10
	dialBaseDelay = 25 * time.Millisecond
	dialTimeout   = 3 * time.Second
)

// peerConn is one live connection to a peer rank: a batching writer
// goroutine fed by an outbox channel, a reader goroutine that decodes
// frames into the node's dispatch, and a keepalive ticker that doubles
// as the health monitor.
type peerConn struct {
	node *Node
	rank int
	conn net.Conn
	br   *bufio.Reader

	out  chan []byte
	down chan struct{}

	started  bool        // connection goroutines are running (set in start)
	failed   atomic.Bool
	quiet    atomic.Bool // graceful close: suppress the read-error report
	lastRecv atomic.Int64
}

func newPeerConn(n *Node, rank int, conn net.Conn) *peerConn {
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are already batched by the writer; leaving Nagle on
		// would add a delayed-ack round trip to every pingpong.
		tc.SetNoDelay(true)
	}
	p := &peerConn{
		node: n,
		rank: rank,
		conn: conn,
		br:   bufio.NewReaderSize(conn, ioBufBytes),
		out:  make(chan []byte, outboxCap),
		down: make(chan struct{}),
	}
	p.lastRecv.Store(time.Now().UnixNano())
	return p
}

// start launches the connection goroutines. Called once bootstrap
// handshakes on this connection are complete.
func (p *peerConn) start() {
	p.started = true
	go p.writer()
	go p.reader()
	go p.keepalive()
}

// send queues an encoded frame, blocking on a full outbox. It reports
// false when the peer is down; the caller's failure handling already
// ran (or is running) via peerDown, so dropping the frame is correct —
// the run is aborting.
func (p *peerConn) send(b []byte) bool {
	select {
	case p.out <- b:
		return true
	case <-p.down:
		return false
	}
}

// writer drains the outbox into the socket, flushing only when the
// queue runs dry — consecutive frames batch into one syscall.
func (p *peerConn) writer() {
	bw := bufio.NewWriterSize(p.conn, ioBufBytes)
	for {
		var b []byte
		select {
		case b = <-p.out:
		case <-p.down:
			bw.Flush()
			return
		}
		for {
			if b == nil {
				// Graceful-close marker queued by close(): everything
				// ahead of it is written; flush and close the socket so
				// the peer reads the goodbye, then a clean EOF.
				bw.Flush()
				p.shutdown()
				return
			}
			if _, err := bw.Write(b); err != nil {
				p.fail("write", err)
				return
			}
			select {
			case b = <-p.out:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			p.fail("write", err)
			return
		}
	}
}

// reader decodes frames and hands them to the node.
func (p *peerConn) reader() {
	for {
		f, err := readFrame(p.br)
		if err != nil {
			p.fail("read", err)
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		p.node.dispatch(p, f)
	}
}

// keepalive sends idle pings and declares the peer dead when nothing —
// not even a ping — arrived for peerTimeout.
func (p *peerConn) keepalive() {
	ping, _ := EncodeFrame(&Frame{Type: FPing})
	t := time.NewTicker(keepaliveEvery)
	defer t.Stop()
	for {
		select {
		case <-p.down:
			return
		case <-t.C:
		}
		select {
		case p.out <- ping:
		default: // outbox full: traffic is flowing, no ping needed
		}
		idle := time.Since(time.Unix(0, p.lastRecv.Load()))
		if idle > peerTimeout {
			p.fail("keepalive", &timeoutError{idle: idle})
		}
	}
}

type timeoutError struct{ idle time.Duration }

func (e *timeoutError) Error() string {
	return "no traffic for " + e.idle.Round(time.Millisecond).String()
}

// fail tears the connection down once and reports it to the node.
func (p *peerConn) fail(op string, err error) {
	if !p.failed.CompareAndSwap(false, true) {
		return
	}
	p.conn.Close()
	close(p.down)
	if p.quiet.Load() {
		return
	}
	p.node.peerDown(p, op, err)
}

// shutdown closes the socket without reporting — the quiet half of
// fail, for planned teardown.
func (p *peerConn) shutdown() {
	if p.failed.CompareAndSwap(false, true) {
		p.conn.Close()
		close(p.down)
	}
}

// close shuts the connection down gracefully. With the connection
// goroutines running, a nil marker rides the outbox behind any queued
// frames (the FLeave goodbye in particular): the writer flushes
// everything ahead of it and only then closes the socket, so the peer
// reads the goodbye before the EOF.
func (p *peerConn) close() {
	p.quiet.Store(true)
	if !p.started {
		p.shutdown()
		return
	}
	select {
	case p.out <- nil:
	case <-p.down:
	default:
		// Outbox jammed mid-teardown: hard close rather than block.
		p.shutdown()
	}
}

// dialRetry dials addr with exponential backoff and jitter — worker
// processes race the coordinator's listen during bootstrap, and a
// refused connection a few milliseconds in is expected, not fatal.
func dialRetry(addr string) (net.Conn, error) {
	var lastErr error
	delay := dialBaseDelay
	for attempt := 0; attempt < dialAttempts; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		// Full jitter: sleep a uniform fraction of the doubling window
		// so simultaneous dialers do not reconverge on the same instant.
		time.Sleep(time.Duration(rand.Int63n(int64(delay))) + delay/2)
		delay *= 2
	}
	return nil, lastErr
}
