package netrt

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
)

// startWorld brings up an in-process world via the coordinator
// bootstrap, failing the test on any rank's error.
func startWorld(t *testing.T, world int) []*Node {
	return startWorldConfig(t, world, Config{})
}

// startWorldConfig boots an in-process world with extra Config applied
// to every rank and tears it down with the test.
func startWorldConfig(t *testing.T, world int, base Config) []*Node {
	t.Helper()
	nodes, err := StartLocalConfig(world, base)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// runAll runs every runtime concurrently and waits for all to return.
func runAll(rts []*Runtime) {
	var wg sync.WaitGroup
	for _, rt := range rts {
		rt := rt
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.Run()
		}()
	}
	wg.Wait()
}

func TestSingleProcessWorldIsDegenerate(t *testing.T) {
	n, err := Start(Config{World: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Rank() != 0 || n.World() != 1 || n.IsWorker() {
		t.Fatalf("rank=%d world=%d worker=%v", n.Rank(), n.World(), n.IsWorker())
	}
}

// TestStartRejectsBadConfigs pins the typed validation gate: every
// impossible configuration must come back as an ErrBadConfig-wrapping
// NetError from Start itself — not a late panic, not a hung bootstrap —
// and must not be Recoverable (there is no world to rejoin).
func TestStartRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero world", Config{Rank: 0, World: 0, Coord: "127.0.0.1:0"}},
		{"negative world", Config{Rank: 0, World: -3, Coord: "127.0.0.1:0"}},
		{"rank below -1", Config{Rank: -2, World: 2, Coord: "127.0.0.1:0"}},
		{"rank at world", Config{Rank: 2, World: 2, Coord: "127.0.0.1:0"}},
		{"rank past world", Config{Rank: 7, World: 2, Coord: "127.0.0.1:0"}},
		{"out-of-range static rank", Config{Rank: 5, World: 2, PeersCSV: "127.0.0.1:1,127.0.0.1:2"}},
		{"self-spawn rank with static peers", Config{Rank: -1, World: 2, PeersCSV: "127.0.0.1:1,127.0.0.1:2"}},
		{"negative eager threshold", Config{Rank: 0, World: 2, Coord: "127.0.0.1:0", EagerMax: -1}},
		{"negative shm ring", Config{Rank: 0, World: 2, Coord: "127.0.0.1:0", ShmRingBytes: -4096}},
		{"negative shm arena", Config{Rank: 0, World: 2, Coord: "127.0.0.1:0", ShmArenaBytes: -1}},
		{"rank 0 without coord or peers", Config{Rank: 0, World: 2}},
		{"worker without coord or peers", Config{Rank: 1, World: 2}},
		{"world/peers mismatch", Config{Rank: 0, World: 3, PeersCSV: "a:1,b:2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := Start(tc.cfg)
			if err == nil {
				n.Close()
				t.Fatal("accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("got %v, want ErrBadConfig", err)
			}
			var ne *NetError
			if !errors.As(err, &ne) || ne.Op != "config" || ne.Peer != -1 {
				t.Fatalf("got %v, want a typed config NetError with Peer -1", err)
			}
			if Recoverable([]error{err}) {
				t.Fatal("config rejection must not be Recoverable")
			}
		})
	}
}

// TestMessagingAndQuiescence bounces messages between two ranks — one
// chain under the eager threshold, one over it (rendezvous) — and checks
// that both runtimes reach distributed quiescence with every hop
// delivered and payloads intact.
func TestMessagingAndQuiescence(t *testing.T) {
	nodes := startWorld(t, 2)
	rts := make([]*Runtime, 2)
	for i, n := range nodes {
		rt, err := n.NewRuntime(4)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}
	big := bytes.Repeat([]byte{0x5A}, DefaultEagerMax*2) // forces rendezvous
	var delivered [2]atomic.Int64
	var badPayload atomic.Int64
	for i := range rts {
		i := i
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			env := e
			rt.Enqueue(env.DstPE, func() {
				delivered[i].Add(1)
				if len(env.Data) > 0 && !bytes.Equal(env.Data, big) {
					badPayload.Add(1)
				}
				if env.Tag > 0 {
					rt.SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: env.DstPE,
						DstPE: env.SrcPE, Tag: env.Tag - 1, Data: env.Data})
				}
				// env.Data aliases the pooled wire buffer; release it
				// only after the last use (the ownership contract of
				// SetDeliver).
				bufpool.Put(pooled)
			})
		})
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 2, Tag: 5, Data: big})
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 1, DstPE: 3, Tag: 2})
	})
	runAll(rts)
	for i, rt := range rts {
		if errs := rt.Errors(); len(errs) > 0 {
			t.Fatalf("rank %d errors: %v", i, errs)
		}
	}
	// Tag chain 5 -> 0 lands 6 times, tag chain 2 -> 0 lands 3 times.
	if got := delivered[0].Load() + delivered[1].Load(); got != 9 {
		t.Errorf("delivered %d messages, want 9", got)
	}
	if badPayload.Load() != 0 {
		t.Errorf("%d deliveries carried a corrupted rendezvous payload", badPayload.Load())
	}
}

// TestBroadcast fans one cast out of rank 0; every other rank must see
// it exactly once (local fan-out is the receiver's business).
func TestBroadcast(t *testing.T) {
	nodes := startWorld(t, 3)
	rts := make([]*Runtime, 3)
	for i, n := range nodes {
		rt, err := n.NewRuntime(3)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}
	var casts [3]atomic.Int64
	for i := range rts {
		i := i
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			if pooled != nil {
				t.Errorf("rank %d: broadcast delivered a pooled payload (fan-out has no release point)", i)
			}
			if e.Kind != EnvCast || e.Array != 1 {
				t.Errorf("rank %d: unexpected envelope %+v", i, e)
			}
			rt.Enqueue(rt.Lo(), func() { casts[i].Add(1) })
		})
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendCast(&Env{Kind: EnvCast, Array: 1, EP: 2, DstPE: -1})
	})
	runAll(rts)
	if casts[0].Load() != 0 || casts[1].Load() != 1 || casts[2].Load() != 1 {
		t.Errorf("cast deliveries = [%d %d %d], want [0 1 1]",
			casts[0].Load(), casts[1].Load(), casts[2].Load())
	}
}

// TestPutSink ships a one-sided put across the process boundary and
// checks the handle id and raw bytes arrive intact, with the receiver
// holding the run open via the put credit until its detection completes.
func TestPutSink(t *testing.T) {
	nodes := startWorld(t, 2)
	rts := make([]*Runtime, 2)
	for i, n := range nodes {
		rt, err := n.NewRuntime(2)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
		rt.SetDeliver(func(e Env, pooled []byte) { bufpool.Put(pooled) })
	}
	payload := bytes.Repeat([]byte{0xC3}, 256)
	var gotID atomic.Int64
	var gotPayload []byte
	gotID.Store(-1)
	rt1 := rts[1]
	rt1.SetPutSink(func(id int64, b []byte) {
		// The ckdirect sink's credit discipline: hold the run open before
		// acknowledging receipt, release on the receiving PE.
		rt1.PutIssued()
		gotID.Store(id)
		gotPayload = append([]byte(nil), b...)
		rt1.Enqueue(1, func() { rt1.PutDetected() })
	})
	rts[0].Enqueue(0, func() { rts[0].SendPut(1, 7, payload) })
	runAll(rts)
	if gotID.Load() != 7 {
		t.Fatalf("put handle id = %d, want 7", gotID.Load())
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("put payload corrupted in flight")
	}
}

// TestSequentialGenerations reuses one mesh for two back-to-back runs,
// exercising the run-generation buffering that keeps a fast rank's
// next-run frames out of a slow rank's previous run.
func TestSequentialGenerations(t *testing.T) {
	nodes := startWorld(t, 2)
	for gen := 0; gen < 2; gen++ {
		rts := make([]*Runtime, 2)
		for i, n := range nodes {
			rt, err := n.NewRuntime(2)
			if err != nil {
				t.Fatalf("gen %d rank %d: %v", gen, i, err)
			}
			rts[i] = rt
		}
		var got atomic.Int64
		for i := range rts {
			rt := rts[i]
			rt.SetDeliver(func(e Env, pooled []byte) {
				env := e
				rt.Enqueue(env.DstPE, func() { got.Add(1); bufpool.Put(pooled) })
			})
		}
		rts[0].Enqueue(0, func() {
			rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 1, Tag: gen})
		})
		runAll(rts)
		for i, rt := range rts {
			if errs := rt.Errors(); len(errs) > 0 {
				t.Fatalf("gen %d rank %d errors: %v", gen, i, errs)
			}
		}
		if got.Load() != 1 {
			t.Fatalf("gen %d delivered %d messages, want 1", gen, got.Load())
		}
	}
}

// TestPeerLossAbortsRun kills the transport under a run that cannot
// otherwise finish (rank 1 never starts, so termination never completes)
// and checks rank 0's Run unwinds with a typed NetError instead of
// hanging in quiescence detection.
func TestPeerLossAbortsRun(t *testing.T) {
	nodes := startWorld(t, 2)
	rt0, err := nodes[0].NewRuntime(2)
	if err != nil {
		t.Fatal(err)
	}
	rt0.SetDeliver(func(e Env, pooled []byte) { bufpool.Put(pooled) })
	if _, err := nodes[1].NewRuntime(2); err != nil {
		t.Fatal(err)
	}
	// Sever the socket the hard way — no Close handshake, as a killed
	// process would.
	go func() {
		time.Sleep(50 * time.Millisecond)
		nodes[1].peers[0].conn.Close()
	}()
	done := make(chan struct{})
	go func() {
		rt0.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("rank 0 hung after losing its peer")
	}
	if !rt0.Aborted() {
		t.Fatal("run not marked aborted")
	}
	errs := rt0.Errors()
	if len(errs) == 0 {
		t.Fatal("no errors recorded")
	}
	var ne *NetError
	if !errors.As(errs[0], &ne) {
		t.Fatalf("error %v (%T) is not a NetError", errs[0], errs[0])
	}
	if ne.Peer != 1 {
		t.Errorf("NetError names peer %d, want 1", ne.Peer)
	}
	// The node remembers the dead peer: the next run aborts immediately.
	rtNext, err := nodes[0].NewRuntime(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rtNext.Aborted() {
		t.Error("next run on a dead mesh did not pre-abort")
	}
}
