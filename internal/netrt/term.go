package netrt

// Hierarchical termination: the four-counter protocol's probe rounds
// aggregate up a k-ary tree over the ranks (k = Config.TermFanout)
// instead of funneling every report straight to rank 0. The root still
// runs the unchanged stability logic in Runtime.coordinate — two
// consecutive rounds of all-idle with globally equal, unchanged
// sent/received counts — but each round now costs the root O(k) frames
// and O(log_k N) latency rather than O(N) fan-in.
//
// Shape: rank r's parent is (r-1)/k, its children are k·r+1 …
// min(k·r+k, world-1) — the classic array heap layout, so the tree
// needs no setup traffic and every rank derives it locally. Probes flow
// root→leaves, reports leaves→root with each interior rank folding its
// subtree (idle &&=, s +=, r +=) before reporting up; FHalt flows
// root→leaves down the same edges. Parent < child always, so under lazy
// dialing the parent is the dialer on every tree edge and the protocol
// never needs an FDialReq.
//
// Correctness is the flat protocol's argument unchanged: counters are
// monotonic and a report is a snapshot taken at some instant during the
// round (leaves sample at probe receipt, interior ranks when their last
// child answers), so two consecutive rounds with all-idle and equal,
// unchanged global sums still prove no frame was in flight at the
// second round's start. A generation a rank has not attached yet
// reports non-idle with zero counters, exactly as before.

// termParent returns rank r's parent in the k-ary termination tree.
func termParent(r, fanout int) int {
	return (r - 1) / fanout
}

// termChildren returns rank r's children in the k-ary tree over world
// ranks (nil for leaves).
func termChildren(r, fanout, world int) []int {
	lo := r*fanout + 1
	if lo >= world {
		return nil
	}
	hi := lo + fanout
	if hi > world {
		hi = world
	}
	kids := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		kids = append(kids, c)
	}
	return kids
}

// termKey names one in-flight aggregation: a probe round of one run
// generation in one probe epoch.
type termKey struct {
	run   int64
	epoch int64
}

// probeAgg accumulates an interior rank's subtree during one round.
type probeAgg struct {
	need, got int
	idle      bool
	s, r      int64
}

// localTermFrame builds this rank's own contribution to a round: the
// attached runtime's idle state and frame counters, or non-idle zeros
// when generation run has not attached here yet.
func (n *Node) localTermFrame(run, epoch int64) Frame {
	rep := Frame{Type: FReport, Run: run, A: epoch}
	if rt := n.current(run); rt != nil {
		idle, s, r := rt.localReport()
		if idle {
			rep.B = 1
		}
		rep.C, rep.D = s, r
	}
	return rep
}

// onProbe handles a termination probe arriving from this rank's tree
// parent. A leaf answers immediately; an interior rank opens an
// aggregation window and forwards the probe to its children — their
// reports cannot overtake this forward (TCP delivers per-edge FIFO), so
// the window always exists when they arrive.
func (n *Node) onProbe(p *peerConn, f Frame) {
	kids := termChildren(n.rank, n.termFanout, n.world)
	if len(kids) == 0 {
		rep := n.localTermFrame(f.Run, f.A)
		n.sendTo(termParent(n.rank, n.termFanout), &rep)
		return
	}
	key := termKey{run: f.Run, epoch: f.A}
	n.termMu.Lock()
	// A new round obsoletes older ones (the root abandoned them): prune
	// so an aborted run's windows don't accumulate.
	for k := range n.termAggs {
		if k.run < key.run || (k.run == key.run && k.epoch < key.epoch) {
			delete(n.termAggs, k)
		}
	}
	n.termAggs[key] = &probeAgg{need: len(kids), idle: true}
	n.termMu.Unlock()
	fwd := Frame{Type: FProbe, Run: f.Run, A: f.A}
	for _, c := range kids {
		n.sendTo(c, &fwd)
	}
}

// onReport handles a child's (possibly already-aggregated) report. At
// the root it feeds the coordinator's per-child table; at an interior
// rank it merges into the round's window and, when the last child has
// answered, folds in the local state and reports the whole subtree up.
// Reports for pruned windows (an abandoned round) drop silently — the
// root gave up on that round long ago.
func (n *Node) onReport(p *peerConn, f Frame) {
	if n.rank == 0 {
		n.probeReports.Add(1)
		if rt := n.current(f.Run); rt != nil {
			rt.noteReport(p.rank, f)
		}
		return
	}
	key := termKey{run: f.Run, epoch: f.A}
	n.termMu.Lock()
	agg := n.termAggs[key]
	if agg == nil {
		n.termMu.Unlock()
		return
	}
	agg.got++
	agg.idle = agg.idle && f.B == 1
	agg.s += f.C
	agg.r += f.D
	done := agg.got == agg.need
	if done {
		delete(n.termAggs, key)
	}
	n.termMu.Unlock()
	if !done {
		return
	}
	rep := n.localTermFrame(f.Run, f.A)
	if !agg.idle {
		rep.B = 0
	}
	rep.C += agg.s
	rep.D += agg.r
	n.sendTo(termParent(n.rank, n.termFanout), &rep)
}

// onHalt forwards the halt order down this rank's subtree, then halts
// the local run. Forwarding is unconditional — a rank that never
// attached the generation still owes its children the halt.
func (n *Node) onHalt(f Frame) {
	fwd := Frame{Type: FHalt, Run: f.Run}
	for _, c := range termChildren(n.rank, n.termFanout, n.world) {
		n.sendTo(c, &fwd)
	}
	if rt := n.current(f.Run); rt != nil {
		rt.halt()
	}
}
