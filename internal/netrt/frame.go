// Package netrt is the distributed execution backend: it runs the
// message-driven programs of this repository across multiple OS
// processes connected by TCP sockets, emulating the paper's network
// protocol stack in live code. Each process hosts a contiguous block of
// PEs on a local realrt goroutine runtime; Charm++ messages cross
// process boundaries as eager frames below a size threshold and as a
// rendezvous (RTS/CTS/data) exchange above it — the same split the
// netmodel personalities price — while CkDirect puts become
// registered-buffer writes: the receiving process deposits the payload
// directly into the preregistered destination region and release-stores
// the sentinel word, so the unmodified poll loop in internal/ckdirect
// detects completion with no callback message, preserving the paper's
// unsynchronized one-sided semantics.
//
// The design is SPMD: every process runs the identical program setup, so
// chare arrays, entry points and CkDirect handles carry the same ordinal
// identities everywhere, and only wire-serializable identities (array
// ordinal, element index, EP, handle ID) ever cross a process boundary.
//
// Termination reuses the realrt work-credit discipline, lifted to a
// coordinator-rooted distributed sum: each process counts app frames
// sent and received, rank 0 probes all ranks, and the run halts only
// after two consecutive probe rounds agree that every process is idle
// and the global sent/received sums match and did not move — the
// classic four-counter termination argument.
package netrt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bufpool"
)

// Frame types. Control frames (hello/join/peers/probe/report/halt/ping/
// bye) are runtime-internal and never counted by termination detection;
// app frames (eager/rts/cts/data/put/cast) carry program traffic.
const (
	// FHello identifies an inbound mesh connection: A = sender rank.
	FHello byte = iota + 1
	// FJoin is the worker->coordinator bootstrap: A = sender rank,
	// payload = the worker's own listen address.
	FJoin
	// FPeers is the coordinator's bootstrap reply: payload = newline-
	// joined listen addresses indexed by rank.
	FPeers
	// FEager is a small Charm message: payload = encoded Env.
	FEager
	// FRTS requests a rendezvous transfer: A = transfer id, B = bytes.
	FRTS
	// FCTS grants a rendezvous transfer: A = transfer id.
	FCTS
	// FData is the granted rendezvous body: A = transfer id, payload =
	// encoded Env.
	FData
	// FPut is a one-sided put into a preregistered buffer: A = CkDirect
	// handle id, payload = the raw source bytes.
	FPut
	// FCast is an array broadcast: payload = encoded Env; the receiving
	// process delivers to every local element of the array.
	FCast
	// FProbe is the coordinator's termination probe: A = epoch.
	FProbe
	// FReport answers a probe: A = epoch, B = idle flag, C = frames
	// sent, D = frames received (app frames only).
	FReport
	// FHalt announces global termination of the run generation.
	FHalt
	// FPing is an idle keepalive; it carries nothing and proves only
	// that the peer process is alive.
	FPing
	// FBye announces an abort: A = origin rank, payload = reason. Every
	// receiver cascades into its own abort so no process hangs waiting
	// for traffic that will never come.
	FBye
	// FLeave is a graceful goodbye: the sender has finished every run
	// generation through A and is closing its side of the mesh, so the
	// EOF that follows on this connection is expected teardown — not a
	// lost peer. A run the sender has NOT finished (generation > A)
	// can no longer complete and aborts on receipt.
	FLeave
	// FJob is the coordinator's job announcement in service mode
	// (internal/serve): A = job sequence number, payload = the encoded
	// job spec every rank must execute next. Control traffic — it rides
	// between run generations and is never counted by termination
	// detection.
	FJob
	// FJobDone is a worker's job report back to the coordinator: A = job
	// sequence number, payload = the encoded per-rank outcome.
	FJobDone
	// FShmOffer proposes a shared-memory link for this edge during
	// bootstrap: payload = "unixName\ntoken\nhostID", A = ring bytes,
	// B = arena bytes. An empty payload is an explicit decline (shm
	// disabled or unsupported on the offering side). Exchanged
	// synchronously on the raw socket before the frame goroutines
	// start, so it never interleaves with app traffic.
	FShmOffer
	// FShmAck answers an offer: A = 1 when the receiver mapped the
	// segment and the edge switches its app frames to the shm rings,
	// A = 0 when it stays on TCP.
	FShmAck
	// FShmReg advertises a CkDirect destination buffer placed inside
	// the shm arena, receiver → sender: Run = generation, A = handle
	// id, B = arena offset, C = byte size. Control traffic on the TCP
	// stream; a sender holding a registration deposits puts straight
	// into the mapped arena and sends only a doorbell.
	FShmReg
	// FMove ships a migrating array element's packed state from its old
	// hosting rank to its new one: A = array ordinal, payload = the
	// element index (four little-endian int64s) followed by the packed
	// state (charm.PackElement). A counted app frame — termination must
	// not conclude around an element in flight.
	FMove
	// FLoc broadcasts a load-balancing plan from the root rank:
	// payload = the encoded move list. Every receiver applies the
	// identical location updates (SPMD bookkeeping). A counted app
	// frame, like the FCast it is morally a specialization of.
	FLoc
	// FDialReq asks a lower rank to establish a lazy mesh edge: A = the
	// rank that should dial, B = the rank asking to be dialed. Under
	// lazy dialing the connection initiator is always the lower rank
	// (that convention keeps the shm offer/accept roles of the eager
	// bootstrap), so when a higher rank needs first contact it relays
	// this request through the coordinator's always-open star: requester
	// → rank 0 → rank A, which then dials the requester and flushes both
	// sides' stashed frames.
	FDialReq
	frameTypeMax
)

// Wire format: an 8-byte header (magic "CK", version, type, little-
// endian uint32 body length) followed by the body — the run generation
// and four type-specific int64 fields, then the variable payload.
const (
	frameMagic0  = 'C'
	frameMagic1  = 'K'
	FrameVersion = 1

	frameHeaderLen = 8
	frameFixedBody = 40 // Run + A..D

	// MaxFrameBody caps a frame body so a corrupt length prefix cannot
	// make a reader allocate unboundedly.
	MaxFrameBody = 64 << 20
)

// Frame is one wire message. The meaning of A..D depends on Type; Run is
// the run generation app frames belong to (frames for a future
// generation are buffered by the receiving node until that run starts).
type Frame struct {
	Type       byte
	Run        int64
	A, B, C, D int64
	Payload    []byte
}

// frameWireLen is the full on-wire size of a frame carrying payloadLen
// bytes — what a pooled encode buffer must hold.
func frameWireLen(payloadLen int) int { return frameHeaderLen + frameFixedBody + payloadLen }

// appendFrameHeader writes the 8-byte header plus the fixed body fields
// for a frame whose payload will be payloadLen bytes. The caller
// appends exactly payloadLen payload bytes afterwards; validity of typ
// and payloadLen is the caller's job (AppendFrame checks, the pooled
// send paths encode only known-good frames).
func appendFrameHeader(dst []byte, typ byte, run, a, b, c, d int64, payloadLen int) []byte {
	dst = append(dst, frameMagic0, frameMagic1, FrameVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameFixedBody+payloadLen))
	for _, v := range [...]int64{run, a, b, c, d} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if f.Type == 0 || f.Type >= frameTypeMax {
		return dst, fmt.Errorf("netrt: encode of unknown frame type %d", f.Type)
	}
	if len(f.Payload) > MaxFrameBody-frameFixedBody {
		return dst, fmt.Errorf("netrt: frame payload of %d bytes exceeds the %d-byte cap", len(f.Payload), MaxFrameBody-frameFixedBody)
	}
	dst = appendFrameHeader(dst, f.Type, f.Run, f.A, f.B, f.C, f.D, len(f.Payload))
	return append(dst, f.Payload...), nil
}

// EncodeFrame encodes f into a fresh buffer.
func EncodeFrame(f *Frame) ([]byte, error) {
	return AppendFrame(make([]byte, 0, frameWireLen(len(f.Payload))), f)
}

// encodeFramePooled encodes f into a buffer drawn from the Default
// bufpool. Ownership of the returned buffer transfers with the frame:
// the peer writer returns it to the pool after the writev (callers that
// fail to hand it off must Put it themselves).
func encodeFramePooled(f *Frame) ([]byte, error) {
	return AppendFrame(bufpool.Get(frameWireLen(len(f.Payload)))[:0], f)
}

// DecodeFrame decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. It never panics on truncated
// or corrupt input — every malformed shape is an error. The returned
// frame owns a fresh copy of its payload.
func DecodeFrame(b []byte) (Frame, int, error) {
	return DecodeFrameInto(b, nil)
}

// DecodeFrameInto is DecodeFrame with a caller-provided scratch buffer
// for the payload: when cap(scratch) holds it, the returned frame's
// Payload aliases scratch (sliced to payload length) and no allocation
// occurs; otherwise a fresh buffer is allocated exactly as DecodeFrame
// would. The caller owns scratch and must keep it alive for as long as
// the frame's payload is in use.
func DecodeFrameInto(b, scratch []byte) (Frame, int, error) {
	var f Frame
	if len(b) < frameHeaderLen {
		return f, 0, fmt.Errorf("netrt: truncated frame header (%d bytes)", len(b))
	}
	if b[0] != frameMagic0 || b[1] != frameMagic1 {
		return f, 0, fmt.Errorf("netrt: bad frame magic %#x %#x", b[0], b[1])
	}
	if b[2] != FrameVersion {
		return f, 0, fmt.Errorf("netrt: frame version %d, this build speaks %d", b[2], FrameVersion)
	}
	if b[3] == 0 || b[3] >= frameTypeMax {
		return f, 0, fmt.Errorf("netrt: unknown frame type %d", b[3])
	}
	body := int(binary.LittleEndian.Uint32(b[4:8]))
	if body < frameFixedBody || body > MaxFrameBody {
		return f, 0, fmt.Errorf("netrt: frame body length %d outside [%d,%d]", body, frameFixedBody, MaxFrameBody)
	}
	if len(b) < frameHeaderLen+body {
		return f, 0, fmt.Errorf("netrt: truncated frame body (%d of %d bytes)", len(b)-frameHeaderLen, body)
	}
	f.Type = b[3]
	fields := b[frameHeaderLen:]
	f.Run = int64(binary.LittleEndian.Uint64(fields[0:]))
	f.A = int64(binary.LittleEndian.Uint64(fields[8:]))
	f.B = int64(binary.LittleEndian.Uint64(fields[16:]))
	f.C = int64(binary.LittleEndian.Uint64(fields[24:]))
	f.D = int64(binary.LittleEndian.Uint64(fields[32:]))
	if n := body - frameFixedBody; n > 0 {
		src := fields[frameFixedBody : frameFixedBody+n]
		if cap(scratch) >= n {
			f.Payload = scratch[:n]
			copy(f.Payload, src)
		} else {
			f.Payload = append([]byte(nil), src...)
		}
	}
	return f, frameHeaderLen + body, nil
}

// frameMeta is the fixed prefix of one frame — everything except the
// payload — decoded straight off the stream so the reader can choose
// where the payload lands (a pooled buffer, or for FPut the registered
// destination region itself) before reading a single payload byte.
type frameMeta struct {
	typ        byte
	run        int64
	a, b, c, d int64
	payloadLen int
}

// readFrameMeta reads and validates the header and fixed body of one
// frame, leaving exactly payloadLen payload bytes unread on r. It
// allocates nothing: the fixed prefix is parsed in place in the bufio
// buffer via Peek/Discard — a stack scratch array would escape through
// the io.Reader interface and cost one heap allocation per frame.
func readFrameMeta(r *bufio.Reader) (frameMeta, error) {
	var m frameMeta
	hdr, err := r.Peek(frameHeaderLen + frameFixedBody)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return m, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return m, fmt.Errorf("netrt: bad frame magic %#x %#x", hdr[0], hdr[1])
	}
	if hdr[2] != FrameVersion {
		return m, fmt.Errorf("netrt: frame version %d, this build speaks %d", hdr[2], FrameVersion)
	}
	if hdr[3] == 0 || hdr[3] >= frameTypeMax {
		return m, fmt.Errorf("netrt: unknown frame type %d", hdr[3])
	}
	body := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if body < frameFixedBody || body > MaxFrameBody {
		return m, fmt.Errorf("netrt: frame body length %d outside [%d,%d]", body, frameFixedBody, MaxFrameBody)
	}
	m.typ = hdr[3]
	fields := hdr[frameHeaderLen:]
	m.run = int64(binary.LittleEndian.Uint64(fields[0:]))
	m.a = int64(binary.LittleEndian.Uint64(fields[8:]))
	m.b = int64(binary.LittleEndian.Uint64(fields[16:]))
	m.c = int64(binary.LittleEndian.Uint64(fields[24:]))
	m.d = int64(binary.LittleEndian.Uint64(fields[32:]))
	m.payloadLen = body - frameFixedBody
	if _, err := r.Discard(len(hdr)); err != nil {
		return m, err
	}
	return m, nil
}

// readFrame reads one frame from a stream (bootstrap handshakes only;
// steady-state traffic uses readFrameMeta so payloads can land in
// pooled or preregistered memory). The returned frame owns its payload.
func readFrame(r *bufio.Reader) (Frame, error) {
	m, err := readFrameMeta(r)
	if err != nil {
		return Frame{}, err
	}
	f := Frame{Type: m.typ, Run: m.run, A: m.a, B: m.b, C: m.c, D: m.d}
	if m.payloadLen > 0 {
		f.Payload = make([]byte, m.payloadLen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// writeFrame encodes and writes one frame synchronously (bootstrap
// handshakes only; steady-state traffic rides the batching writer).
func writeFrame(w io.Writer, f *Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
