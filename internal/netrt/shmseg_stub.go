//go:build !linux

package netrt

import (
	"errors"
	"net"
)

// Non-linux builds keep the shm transport permanently declined: the
// handshake frames still flow (an empty offer, a decline answer), every
// peer stays on TCP, and none of the fd-passing machinery is reachable.
const shmSupported = false

var errShmUnsupported = errors.New("netrt: shared-memory transport requires linux")

func createShmFd(size int) (int, error)       { return -1, errShmUnsupported }
func mapShmFd(fd, size int) ([]byte, error)   { return nil, errShmUnsupported }
func unmapShm(b []byte)                       {}
func closeFd(fd int)                          {}
func fdSize(fd int) (int64, error)            { return 0, errShmUnsupported }
func hostID() string                          { return "" }
func sendFd(conn *net.UnixConn, fd int) error { return errShmUnsupported }
func recvFd(conn *net.UnixConn) (int, error)  { return -1, errShmUnsupported }
