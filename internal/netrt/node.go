package netrt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/rng"
)

// DefaultEagerMax is the eager/rendezvous threshold: an encoded message
// envelope at most this large rides a single eager frame; anything
// bigger negotiates an RTS/CTS exchange first — the same protocol split
// the netmodel personalities price for the simulator.
const DefaultEagerMax = 4096

// closeFlushGrace bounds how long Close waits for the connection
// writers to flush the FLeave goodbyes before the sockets (and likely
// the process) go away. A live writer drains the goodbye in
// microseconds; the grace only matters when a peer has stopped reading.
const closeFlushGrace = 5 * time.Second

// Config describes this process's membership in a net-backend world.
type Config struct {
	// Rank is this process's rank in [0,World); -1 selects self-spawn
	// (this process becomes rank 0 and launches the others itself).
	Rank int
	// World is the number of processes.
	World int
	// Peers is the static launch mode: one listen address per rank.
	Peers []string
	// PeersCSV is Peers as a comma-separated flag value.
	PeersCSV string
	// Coord is the coordinator bootstrap mode: rank 0 listens on this
	// address, every other rank dials it and learns the peer table.
	Coord string
	// EagerMax overrides the eager/rendezvous threshold (bytes).
	EagerMax int
	// ExtraArgs are appended to self-spawned workers' argv (after the
	// replayed parent argv and the injected -net.* flags).
	ExtraArgs []string
	// ExtraEnv entries ("K=V") are appended to self-spawned workers'
	// environment.
	ExtraEnv []string
	// OnListen, when set, observes the local listen address as soon as
	// it is bound (tests coordinate in-process worlds with it).
	OnListen func(addr string)
	// Recover keeps every rank's listener open past bootstrap so a dead
	// rank can be respawned and the mesh rebuilt via Rejoin.
	Recover bool
	// OnRespawn, when set, replaces process respawn during Rejoin: the
	// coordinator calls it (on its own goroutine) for each dead rank,
	// and the hook is responsible for bringing a replacement rank into
	// the world via Start. In-process recovery tests use it; spawned
	// worlds re-exec the dead worker instead.
	OnRespawn func(rank int)
	// ShmOff disables the shared-memory transport for co-located ranks.
	// The zero value leaves it ON: every pair of ranks that proves
	// co-location during bootstrap maps a shared segment and moves its
	// app frames (and CkDirect put deposits) off the kernel entirely,
	// falling back to TCP per edge when the handshake declines.
	ShmOff bool
	// ShmRingBytes and ShmArenaBytes override the per-direction ring and
	// put-arena sizes of a shared segment (0 = defaults). The ring
	// rounds up to a power of two.
	ShmRingBytes  int
	ShmArenaBytes int
	// Seed seeds this node's private randomness (dial-retry jitter, shm
	// handshake tokens); 0 selects a fixed default. Each rank derives
	// its own stream, so chaos runs replay from the run seed.
	Seed uint64
	// TermFanout caps the fan-out of the k-ary termination tree (0 =
	// DefaultTermFanout). Probe rounds aggregate up this tree, so rank
	// 0's per-round fan-in is at most TermFanout regardless of world
	// size; worlds of at most TermFanout+1 ranks degenerate to the flat
	// star protocol exactly.
	TermFanout int
	// StallTimeout widens the hosted runtime's no-progress watchdog (0
	// = the realrt default). A many-rank in-process world on a few
	// cores is legitimately slow — a PE can wait minutes for a peer's
	// halo face while every other rank time-slices the same CPU — so
	// deliberately oversubscribed runs (the scale bench) widen the
	// window instead of letting a healthy-but-starved run be declared
	// deadlocked.
	StallTimeout time.Duration
	// LazyOff disables on-demand connection establishment in the
	// coordinator bootstrap modes: the full worker-to-worker mesh is
	// dialed at Start, as before lazy dialing existed. Static -net.peers
	// launches are always eager (their bootstrap is the address
	// exchange). The coordinator's star (rank 0 <-> every worker) is
	// eager in every mode.
	LazyOff bool
}

// DefaultTermFanout is the default width of the k-ary termination tree.
// Eight keeps the tree two levels deep up to 72 ranks and three levels
// to 584 while the root's per-round fan-in stays constant.
const DefaultTermFanout = 8

// lazyDialBurst caps the number of concurrent lazy dialRetry loops per
// node, so a collective that suddenly needs many new edges (or a
// 256-rank bootstrap wave) doesn't thundering-herd the accept queues.
const lazyDialBurst = 8

// Node is one process's membership in the distributed world: the full
// connection mesh, the bootstrap state, and the attach point for the
// per-run Runtime. A Node outlives individual runs — sequential runs
// (stencil msg-vs-ckd, benchmark sweeps) reuse the same mesh, with run
// generations keeping late frames of one run out of the next.
type Node struct {
	rank, world int
	eagerMax    int
	// peers is the connection table under construction: bootstrap and
	// Rejoin fill it on a single goroutine, then publish it wholesale
	// into live. Everything that runs concurrently with a possible
	// Rejoin (senders, teardown, the Bye cascade) must read the
	// published snapshot via peerTable, never this field.
	peers    []*peerConn // by rank; nil at our own slot
	live     atomic.Pointer[[]*peerConn]
	ln       net.Listener
	children []*spawnedWorker
	cfg      Config // retained for Rejoin (recovery mode only)

	mu           sync.Mutex
	attached     *Runtime
	buffered     []bufFrame
	nextGen      int64
	completedGen int64 // highest run generation whose Run() returned
	deadErr      error // a peer is gone; further runs abort immediately
	closing      bool
	// epoch counts mesh incarnations: it bumps on every Rejoin (under
	// mu, with the rest of the mesh reset), and everything a connection
	// of an earlier epoch produces afterwards is stale — its teardown
	// already happened. peerDown ignores stale failure reports, and
	// dispatch drops stale frames outright (an old connection's reader
	// stays alive until its socket drains, long enough to deliver an
	// FLeave or FBye from the torn-down mesh AFTER the rejoin reset
	// cleared deadErr — adopting it would poison the fresh mesh and
	// abort the re-run at creation). Atomic so dispatch reads it
	// lock-free on the per-frame hot path.
	epoch atomic.Int64
	// dead records peers whose connection broke in the current epoch —
	// direct socket observations only (every rank has a direct edge to
	// every other, so a crashed peer is seen firsthand; an FBye names
	// the messenger, not the dead rank, and is deliberately not
	// recorded here).
	dead map[int]bool

	// jobC carries service-mode job traffic (FJob announcements on a
	// worker, FJobDone reports on the coordinator) from the connection
	// readers to the serving loop. Created lazily by JobFrames.
	jobMu   sync.Mutex
	jobC    chan JobFrame
	jobDrop int64 // frames dropped because jobC was full (consumer wedged)

	// rng is the node's private randomness — dial-retry jitter and shm
	// handshake tokens — seeded from Config.Seed and the rank so
	// simultaneous re-dialers decorrelate and chaos runs replay from
	// the run seed. rngMu guards it (the consumers are cold paths).
	rng   *rng.RNG
	rngMu sync.Mutex

	// shmSrv is the fd-passing endpoint for the shared-memory
	// handshake, created lazily at the first offered segment and living
	// for the node's lifetime (it serves every mesh epoch).
	shmMu  sync.Mutex
	shmSrv *shmServer

	// Lazy dialing state (nil/unused when lazy is off). addrs is the
	// address table the coordinator broadcast at bootstrap — the map a
	// first-contact dial resolves against; mu guards it across Rejoin
	// rewrites. lazySlots serializes edge establishment per peer rank:
	// frames sent before the edge exists stash in the slot and flush, in
	// order, once the connection publishes. joinC carries inbound FJoins
	// from the accept loop to a rejoin in progress (bootstrap joins are
	// accepted directly — the loop isn't running yet). dialSem is the
	// lazyDialBurst semaphore.
	lazy      bool
	addrs     []string
	lazySlots []lazySlot
	joinC     chan inboundJoin
	dialSem   chan struct{}

	// termFanout is the k of the termination tree; termAggs holds this
	// node's in-flight probe aggregations, keyed by (run, probe epoch).
	// Node-level, not Runtime-level: an interior rank forwards probes
	// and merges child reports even for a generation it has not attached
	// yet (it reports itself non-idle with zero counters, exactly as the
	// flat protocol did).
	termFanout int
	termMu     sync.Mutex
	termAggs   map[termKey]*probeAgg

	// Scaling counters, all cumulative over the node's lifetime (they
	// span bootstrap, runs, and rejoins). See trace.CntNet* for meaning.
	connsDialed   atomic.Int64
	connsAccepted atomic.Int64
	dialReqs      atomic.Int64
	probeRounds   atomic.Int64
	probeReports  atomic.Int64
	shmCoalesced  atomic.Int64
	batchGrows    atomic.Int64
	batchShrinks  atomic.Int64
	eagerShrinks  atomic.Int64
}

// rand64 draws from the node's private generator.
func (n *Node) rand64() uint64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Uint64()
}

// JobFrame is one piece of service-mode job traffic: a coordinator's
// job announcement (Done=false) or a worker's completion report
// (Done=true). Seq orders jobs globally; Rank is the sender.
type JobFrame struct {
	Seq     int64
	Rank    int
	Done    bool
	Payload []byte
}

// bufFrame is an app frame that arrived for a run generation this
// process has not started yet (the sender finished the previous run
// first); it is replayed when the matching runtime attaches.
type bufFrame struct {
	rank int
	f    Frame
}

// Start brings this process into the world: bootstraps membership
// (static peer table, coordinator dial-in, or self-spawn), establishes
// the full connection mesh — negotiating a shared-memory segment per
// co-located edge — and returns once every peer is connected.
func Start(cfg Config) (*Node, error) {
	if cfg.PeersCSV != "" && len(cfg.Peers) == 0 {
		for _, a := range strings.Split(cfg.PeersCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Peers = append(cfg.Peers, a)
			}
		}
	}
	world := cfg.World
	if len(cfg.Peers) > 0 {
		if world > 1 && world != len(cfg.Peers) {
			return nil, badConfig(cfg.Rank,
				fmt.Errorf("-net.world=%d but -net.peers lists %d addresses", world, len(cfg.Peers)))
		}
		world = len(cfg.Peers)
	}
	if err := validateConfig(cfg, world); err != nil {
		return nil, err
	}
	if cfg.EagerMax == 0 {
		cfg.EagerMax = DefaultEagerMax
	}
	if cfg.TermFanout == 0 {
		cfg.TermFanout = DefaultTermFanout
	}
	n := &Node{rank: cfg.Rank, world: world, eagerMax: cfg.EagerMax, completedGen: -1,
		cfg: cfg, dead: make(map[int]bool),
		termFanout: cfg.TermFanout, termAggs: make(map[termKey]*probeAgg)}
	if n.rank < 0 {
		n.rank = 0 // self-spawn: this process becomes rank 0
	}
	// Lazy dialing applies to the coordinator bootstrap modes: the
	// address table is distributed eagerly, worker-to-worker sockets
	// open at first contact.
	n.lazy = world > 1 && len(cfg.Peers) == 0 && !cfg.LazyOff
	if n.lazy {
		n.lazySlots = make([]lazySlot, world)
		n.joinC = make(chan inboundJoin, world)
		n.dialSem = make(chan struct{}, lazyDialBurst)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x636b646972656374 // "ckdirect"
	}
	n.rng = rng.New(seed ^ uint64(n.rank+1)*0x9e3779b97f4a7c15)
	if world == 1 {
		// Degenerate single-process world: no sockets, no coordinator —
		// useful for flag plumbing tests and as the safe default.
		return n, nil
	}
	n.peers = make([]*peerConn, world)
	var err error
	switch {
	case len(cfg.Peers) > 0:
		if cfg.Rank < 0 {
			err = badConfig(cfg.Rank, fmt.Errorf("static launch needs -net.rank in [0,%d)", world))
		} else {
			err = n.bootstrapStatic(cfg)
		}
	case cfg.Rank < 0:
		// Self-spawn: coordinate on an ephemeral port and launch the
		// other ranks as copies of this process.
		err = n.bootstrapCoordinator(cfg, "127.0.0.1:0", true)
	case cfg.Rank == 0:
		if cfg.Coord == "" {
			err = badConfig(cfg.Rank, errors.New("rank 0 needs -net.coord (its listen address) or -net.peers"))
		} else {
			err = n.bootstrapCoordinator(cfg, cfg.Coord, false)
		}
	default:
		if cfg.Coord == "" {
			err = badConfig(cfg.Rank, errors.New("workers need -net.coord or -net.peers"))
		} else {
			err = n.bootstrapWorker(cfg)
		}
	}
	if err == nil {
		// Mesh complete, connection goroutines not yet running: negotiate
		// the per-edge shared segments synchronously on the raw conns.
		err = n.setupShm(n.peers)
	}
	n.publishPeers()
	if err != nil {
		n.Close()
		var ne *NetError
		if errors.As(err, &ne) {
			return nil, err
		}
		return nil, &NetError{Rank: n.rank, Peer: -1, Op: "bootstrap", Err: err}
	}
	for _, p := range n.peers {
		if p != nil {
			p.start()
		}
	}
	if n.lazy && n.ln != nil {
		// The retained listener now serves first-contact dials (FHello)
		// and, under recovery, rejoin traffic (FJoin) for the node's
		// lifetime.
		go n.acceptLoop(n.ln)
	}
	return n, nil
}

// validateConfig is the early, typed gate on a Start configuration —
// every rejected shape here used to surface as a late panic or a hung
// bootstrap. World and rank are checked against the world size actually
// in effect (the peers table wins over -net.world when both are given).
func validateConfig(cfg Config, world int) error {
	switch {
	case world <= 0:
		return badConfig(cfg.Rank, fmt.Errorf("world must be at least 1, got %d", world))
	case cfg.Rank < -1:
		return badConfig(cfg.Rank, fmt.Errorf("rank %d is negative (-1 means self-spawn)", cfg.Rank))
	case cfg.Rank >= world:
		return badConfig(cfg.Rank, fmt.Errorf("rank %d outside world [0,%d)", cfg.Rank, world))
	case cfg.EagerMax < 0:
		return badConfig(cfg.Rank, fmt.Errorf("eager threshold %d bytes is negative", cfg.EagerMax))
	case cfg.ShmRingBytes < 0 || cfg.ShmArenaBytes < 0:
		return badConfig(cfg.Rank, fmt.Errorf("negative shm sizing (ring %d, arena %d)",
			cfg.ShmRingBytes, cfg.ShmArenaBytes))
	case cfg.TermFanout < 0:
		return badConfig(cfg.Rank, fmt.Errorf("termination fanout %d is negative", cfg.TermFanout))
	}
	return nil
}

// publishPeers makes the constructed connection table visible to
// lock-free readers. Bootstrap and Rejoin call it once construction is
// complete; until then, concurrent senders keep using the previous
// table (whose connections are down during a rejoin, so their sends
// drop — the run is aborting anyway). The published table is always a
// snapshot copy: lazy dialing keeps mutating n.peers (under mu) as
// edges open, and in-place writes to a shared slice would race the
// lock-free readers.
func (n *Node) publishPeers() {
	t := append([]*peerConn(nil), n.peers...)
	n.live.Store(&t)
}

// peerTable returns the last published connection table (nil before
// bootstrap publishes).
func (n *Node) peerTable() []*peerConn {
	if t := n.live.Load(); t != nil {
		return *t
	}
	return nil
}

// Rank returns this process's rank.
func (n *Node) Rank() int { return n.rank }

// World returns the process count.
func (n *Node) World() int { return n.world }

// IsWorker reports whether this process is a non-coordinator rank —
// drivers use it to keep result printing and artifact writing on rank 0.
func (n *Node) IsWorker() bool { return n.rank != 0 }

// EagerMax returns the eager/rendezvous threshold in effect.
func (n *Node) EagerMax() int { return n.eagerMax }

// Addr returns this node's listen address, or "" when no listener is
// retained. Under Config.Recover the address stays valid for the whole
// run — a respawned rank dials the coordinator's to rejoin.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// listen binds the local listener and publishes its address.
func (n *Node) listen(addr string, onListen func(string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	n.ln = ln
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	return nil
}

// accept takes one inbound connection with a bootstrap deadline.
func (n *Node) accept() (net.Conn, error) {
	if d, ok := n.ln.(*net.TCPListener); ok {
		d.SetDeadline(time.Now().Add(30 * time.Second))
	}
	return n.ln.Accept()
}

// bootstrapStatic wires the mesh from a shared address table: rank r
// listens on Peers[r], dials every lower rank (identifying itself with
// FHello), and accepts a connection from every higher rank.
func (n *Node) bootstrapStatic(cfg Config) error {
	if err := n.listen(cfg.Peers[n.rank], cfg.OnListen); err != nil {
		return err
	}
	for s := 0; s < n.rank; s++ {
		conn, err := n.dialRetry(cfg.Peers[s])
		if err != nil {
			return fmt.Errorf("dial rank %d at %s: %w", s, cfg.Peers[s], err)
		}
		if err := writeFrame(conn, &Frame{Type: FHello, A: int64(n.rank)}); err != nil {
			return err
		}
		n.connsDialed.Add(1)
		n.peers[s] = newPeerConn(n, s, conn)
	}
	return n.acceptHigher()
}

// acceptHigher collects the inbound half of the mesh: one FHello-opened
// connection from every rank above ours.
func (n *Node) acceptHigher() error {
	for need := n.world - 1 - n.rank; need > 0; need-- {
		conn, err := n.accept()
		if err != nil {
			return err
		}
		n.connsAccepted.Add(1)
		p := newPeerConn(n, -1, conn)
		f, err := readFrame(p.br)
		if err != nil || f.Type != FHello {
			conn.Close()
			return fmt.Errorf("expected HELLO on inbound connection: %v", err)
		}
		r := int(f.A)
		if r <= n.rank || r >= n.world || n.peers[r] != nil {
			conn.Close()
			return fmt.Errorf("bad HELLO rank %d", r)
		}
		p.rank = r
		n.peers[r] = p
	}
	n.closeListener()
	return nil
}

// closeListener drops the bootstrap listener — unless recovery or lazy
// dialing is on: recovery re-accepts on the same address after a rank
// death, and a lazy mesh takes first-contact dials for the node's whole
// lifetime.
func (n *Node) closeListener() {
	if n.cfg.Recover || n.lazy {
		return
	}
	n.ln.Close()
	n.ln = nil
}

// bootstrapCoordinator runs rank 0's side of the dial-in protocol:
// collect one FJoin (rank + listen address) per worker, broadcast the
// completed address table as FPeers, and keep each join connection as
// the 0<->r mesh edge. When spawn is set, the workers are launched by
// this process as copies of its own command line.
func (n *Node) bootstrapCoordinator(cfg Config, addr string, spawn bool) error {
	if err := n.listen(addr, cfg.OnListen); err != nil {
		return err
	}
	if spawn {
		// Surface a too-low fd limit as a typed error up front, not as a
		// raw EMFILE somewhere mid-dial: the coordinator's star alone
		// needs a socket per worker, plus listener, shm fds and slack.
		if err := checkSpawnFDBudget(n.rank, n.world); err != nil {
			return err
		}
		children, err := spawnWorkers(cfg, n.world, n.ln.Addr().String())
		if err != nil {
			return err
		}
		n.children = children
	}
	addrs := make([]string, n.world)
	addrs[0] = n.ln.Addr().String()
	for joined := 0; joined < n.world-1; joined++ {
		conn, err := n.accept()
		if err != nil {
			return fmt.Errorf("waiting for workers (%d/%d joined): %w", joined, n.world-1, err)
		}
		n.connsAccepted.Add(1)
		p := newPeerConn(n, -1, conn)
		f, err := readFrame(p.br)
		if err != nil || f.Type != FJoin {
			conn.Close()
			return fmt.Errorf("expected JOIN on inbound connection: %v", err)
		}
		r := int(f.A)
		if r <= 0 || r >= n.world || n.peers[r] != nil {
			conn.Close()
			return fmt.Errorf("bad JOIN rank %d", r)
		}
		p.rank = r
		n.peers[r] = p
		addrs[r] = string(f.Payload)
	}
	n.addrs = addrs
	table := strings.Join(addrs, "\n")
	for r := 1; r < n.world; r++ {
		if err := writeFrame(n.peers[r].conn, &Frame{Type: FPeers, Payload: []byte(table)}); err != nil {
			return err
		}
	}
	n.closeListener()
	return nil
}

// bootstrapWorker runs a worker's dial-in: listen on an ephemeral port,
// join via the coordinator, then build the worker-to-worker mesh edges
// from the broadcast address table (dial lower ranks, accept higher).
func (n *Node) bootstrapWorker(cfg Config) error {
	if err := n.listen("127.0.0.1:0", cfg.OnListen); err != nil {
		return err
	}
	conn, err := n.dialRetry(cfg.Coord)
	if err != nil {
		return fmt.Errorf("dial coordinator at %s: %w", cfg.Coord, err)
	}
	n.connsDialed.Add(1)
	p := newPeerConn(n, 0, conn)
	if err := writeFrame(conn, &Frame{Type: FJoin, A: int64(n.rank), Payload: []byte(n.ln.Addr().String())}); err != nil {
		return err
	}
	f, err := readFrame(p.br)
	if err != nil || f.Type != FPeers {
		return fmt.Errorf("expected PEERS from coordinator: %v", err)
	}
	n.peers[0] = p
	addrs := strings.Split(string(f.Payload), "\n")
	if len(addrs) != n.world {
		return fmt.Errorf("coordinator sent %d peer addresses, world is %d", len(addrs), n.world)
	}
	n.addrs = addrs
	if n.lazy {
		// Only the coordinator edge opens at bootstrap; worker-to-worker
		// sockets wait for first contact (acceptLoop takes the inbound
		// halves for the node's lifetime).
		return nil
	}
	for s := 1; s < n.rank; s++ {
		conn, err := n.dialRetry(addrs[s])
		if err != nil {
			return fmt.Errorf("dial rank %d at %s: %w", s, addrs[s], err)
		}
		if err := writeFrame(conn, &Frame{Type: FHello, A: int64(n.rank)}); err != nil {
			return err
		}
		n.connsDialed.Add(1)
		n.peers[s] = newPeerConn(n, s, conn)
	}
	return n.acceptHigher()
}

// sendTo queues a frame for a peer rank, lazily establishing the edge
// on first contact. A false return means the peer is down; the failure
// path is already aborting the run, so callers simply drop the frame.
// The wire bytes live in a pooled buffer owned by the peer writer (or,
// before the edge exists, the lazy stash) from the moment the send is
// accepted.
func (n *Node) sendTo(rank int, f *Frame) bool {
	p, stash := n.routePeer(rank)
	if p == nil && !stash {
		return false
	}
	b, err := encodeFramePooled(f)
	if err != nil {
		bufpool.Put(b)
		panic(fmt.Sprintf("netrt: %v", err))
	}
	return n.routeSend(rank, p, b)
}

// sendOpen queues a frame for a peer rank only if the edge is already
// open — it never triggers a lazy dial. Teardown traffic (FLeave, the
// FBye cascade, keepalives) must use this path: opening sockets to
// ranks we never spoke to, just to say goodbye, would rebuild the full
// mesh that lazy dialing exists to avoid.
func (n *Node) sendOpen(rank int, f *Frame) bool {
	t := n.peerTable()
	if t == nil || rank < 0 || rank >= len(t) || t[rank] == nil {
		return false
	}
	b, err := encodeFramePooled(f)
	if err != nil {
		bufpool.Put(b)
		panic(fmt.Sprintf("netrt: %v", err))
	}
	if !t[rank].send(b) {
		bufpool.Put(b)
		return false
	}
	return true
}

// sendEnv ships one Charm envelope as a frame of the given type: header
// and envelope encode in a single pass into one pooled buffer, so an
// eager send costs no intermediate slice.
func (n *Node) sendEnv(rank int, typ byte, run int64, env *Env) bool {
	p, stash := n.routePeer(rank)
	if p == nil && !stash {
		return false
	}
	size := EnvWireSize(env)
	b := bufpool.Get(frameWireLen(size))[:0]
	b = appendFrameHeader(b, typ, run, 0, 0, 0, 0, size)
	b = AppendEnv(b, env)
	return n.routeSend(rank, p, b)
}

// routePeer resolves a destination rank: an open connection, or
// (nil, true) when the edge does not exist yet but lazy dialing can
// create it — the caller encodes the frame and hands it to routeSend.
func (n *Node) routePeer(rank int) (*peerConn, bool) {
	t := n.peerTable()
	if t == nil || rank < 0 || rank >= len(t) {
		return nil, false
	}
	if p := t[rank]; p != nil {
		return p, false
	}
	return nil, n.lazy && rank != n.rank
}

// routeSend delivers an encoded frame: via the open connection, or into
// the peer's lazy-dial stash. Ownership of b transfers on true; on
// false the pooled buffer is returned here.
func (n *Node) routeSend(rank int, p *peerConn, b []byte) bool {
	if p != nil {
		if !p.send(b) {
			bufpool.Put(b)
			return false
		}
		return true
	}
	if !n.lazyEnqueue(rank, b) {
		bufpool.Put(b)
		return false
	}
	return true
}

// dispatch routes one received frame. It runs on the owning
// connection's reader goroutine. The return value is an ownership
// verdict on f.Payload: true means the payload buffer was consumed
// (handed onward to a consumer that will return it to the pool), false
// means the reader still owns it and reclaims it when dispatch returns.
// Control frames always finish with the payload synchronously.
func (n *Node) dispatch(p *peerConn, f Frame) bool {
	if p.epoch != n.epoch.Load() {
		// A frame from a pre-Rejoin mesh incarnation, raced out by the
		// epoch bump: that mesh's runs are gone and its failures were
		// already handled, so nothing it says is actionable.
		return false
	}
	switch f.Type {
	case FPing:
		return false
	case FProbe:
		n.onProbe(p, f)
	case FReport:
		n.onReport(p, f)
	case FHalt:
		n.onHalt(f)
	case FDialReq:
		n.onDialReq(f)
	case FBye:
		n.onBye(p, f)
	case FLeave:
		n.onLeave(p, f)
	case FJob, FJobDone:
		n.onJob(p, f)
	case FShmReg:
		p.noteShmReg(f)
	case FEager, FRTS, FCTS, FData, FPut, FCast, FMove, FLoc:
		return n.dispatchApp(p, f)
	default:
		// Bootstrap frames after bootstrap, or future types from a
		// mismatched build: a protocol violation.
		p.fail("read", fmt.Errorf("unexpected frame type %d", f.Type))
	}
	return false
}

// current returns the attached runtime when its generation matches.
func (n *Node) current(gen int64) *Runtime {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attached != nil && n.attached.gen == gen {
		return n.attached
	}
	return nil
}

// dispatchApp delivers an app frame to the matching run, or buffers it
// when this process has not started that run yet. Its return value is
// the same ownership verdict as dispatch's: true only when the pooled
// payload was handed to a consumer that will Put it back.
func (n *Node) dispatchApp(p *peerConn, f Frame) bool {
	n.mu.Lock()
	rt := n.attached
	if rt == nil || f.Run > rt.gen {
		// Buffered frames outlive dispatch, but the reader's payload
		// buffer goes back to the pool the moment dispatch returns —
		// so a buffered frame must own a plain copy.
		f.Payload = append([]byte(nil), f.Payload...)
		n.buffered = append(n.buffered, bufFrame{rank: p.rank, f: f})
		n.mu.Unlock()
		return false
	}
	if f.Run < rt.gen {
		// A frame from a globally-terminated run: termination proved all
		// its frames processed, so this cannot happen absent a protocol
		// bug; dropping it is the safe response.
		n.mu.Unlock()
		return false
	}
	n.mu.Unlock()
	return rt.handleApp(p.rank, f, true)
}

// streamPut is the zero-copy inbound put path: the reader has decoded
// an FPut's meta and its payload is still on the stream br (the TCP
// socket's reader or a shared-memory ring's — the path is transport-
// blind). When the matching run is attached and has a streaming sink
// installed, the payload is read directly into the preregistered
// destination buffer — no intermediate slice exists anywhere. It
// returns handled=false when no such sink applies (runtime not attached
// yet, generation mismatch, no CkDirect manager), in which case the
// reader falls back to the buffered-frame path; a non-nil error is a
// stream failure and kills the connection (the sink consumed an unknown
// number of payload bytes, so no resynchronization is possible).
func (n *Node) streamPut(p *peerConn, br *bufio.Reader, m frameMeta) (bool, error) {
	n.mu.Lock()
	rt := n.attached
	var sink func(id int64, size int, r io.Reader) error
	// The epoch check matters here more than anywhere: generations reset
	// to zero on Rejoin, so without it a stale connection's late FPut
	// could stream into the NEW gen-0 run's registered buffer.
	if rt != nil && rt.gen == m.run && p.epoch == n.epoch.Load() && !rt.aborted.Load() {
		sink = rt.putStream
	}
	n.mu.Unlock()
	if sink == nil {
		return false, nil
	}
	if err := sink(m.a, m.payloadLen, br); err != nil {
		return true, err
	}
	rt.recv.Add(1)
	return true, nil
}

// peerDown handles a lost peer: with a run in flight the runtime aborts
// with a typed NetError and the abort cascades to every other rank (a
// FBye broadcast), so no process hangs inside a quiescence detection
// that can no longer complete. Between runs the loss is recorded and
// the next run aborts at creation.
func (n *Node) peerDown(p *peerConn, op string, err error) {
	ne := &NetError{Rank: n.rank, Peer: p.rank, Op: op, Err: err}
	n.mu.Lock()
	if p.epoch != n.epoch.Load() {
		// A connection from a pre-Rejoin mesh incarnation: its loss was
		// already handled (or deliberately caused) by the rejoin.
		n.mu.Unlock()
		return
	}
	closing := n.closing
	rt := n.attached
	if n.deadErr == nil {
		n.deadErr = ne
	}
	if !closing && p.rank >= 0 {
		n.dead[p.rank] = true
	}
	n.mu.Unlock()
	if rt != nil {
		rt.abort(ne)
		n.broadcastBye(p.rank, ne)
	} else if closing {
		// Peers tearing down after the final run: not an error.
		n.mu.Lock()
		if n.deadErr == ne {
			n.deadErr = nil
		}
		n.mu.Unlock()
	}
}

// onBye handles a peer's abort announcement: adopt the failure and
// abort the local run. Under lazy dialing the mesh may be sparse — not
// every rank has an edge to the origin — so rank 0, whose star to every
// worker is always open, re-broadcasts the first FBye it adopts. The
// set-once deadErr gate keeps the relay from looping (a relayed FBye
// arriving back at rank 0 finds deadErr already set).
func (n *Node) onBye(p *peerConn, f Frame) {
	ne := &NetError{Rank: n.rank, Peer: int(f.A), Op: "peer-abort", Err: errors.New(string(f.Payload))}
	n.mu.Lock()
	first := n.deadErr == nil
	if first {
		n.deadErr = ne
	}
	rt := n.attached
	n.mu.Unlock()
	if rt != nil {
		rt.abort(ne)
	}
	if first && n.rank == 0 {
		relay := Frame{Type: FBye, A: f.A, Payload: f.Payload}
		for r, q := range n.peerTable() {
			if q == nil || r == p.rank || r == int(f.A) || q.failed.Load() {
				continue
			}
			n.sendOpen(r, &relay)
		}
	}
}

// broadcastBye tells every rank this node can still reach that the run
// is dead. Deliberately sendOpen: a bye must not lazily open sockets,
// and it doesn't need to — rank 0 hears it over the always-open star
// and relays it to the ranks the origin had no edge to (onBye).
func (n *Node) broadcastBye(exceptRank int, ne *NetError) {
	f := Frame{Type: FBye, A: int64(n.rank), Payload: []byte(ne.Error())}
	for r, p := range n.peerTable() {
		if p == nil || r == exceptRank || p.failed.Load() {
			continue
		}
		n.sendOpen(r, &f)
	}
}

// attach installs a freshly built runtime and replays any frames that
// arrived for its generation before this process started the run.
func (n *Node) attach(rt *Runtime) {
	n.mu.Lock()
	n.attached = rt
	var flush []bufFrame
	keep := n.buffered[:0]
	for _, bf := range n.buffered {
		if bf.f.Run == rt.gen {
			flush = append(flush, bf)
		} else if bf.f.Run > rt.gen {
			keep = append(keep, bf)
		}
	}
	n.buffered = keep
	n.mu.Unlock()
	for _, bf := range flush {
		rt.handleApp(bf.rank, bf.f, false)
	}
}

// detach clears the attach point once a run's Run() returns.
func (n *Node) detach(rt *Runtime) {
	n.mu.Lock()
	if n.attached == rt {
		n.attached = nil
	}
	if rt.gen > n.completedGen {
		n.completedGen = rt.gen
	}
	n.mu.Unlock()
}

// onLeave handles a peer's graceful goodbye: the peer finished every
// run generation through f.A and is exiting, so the EOF about to
// follow on this connection is planned teardown. Quieting the
// connection BEFORE the reader hits that EOF (the goodbye and the EOF
// arrive on the same goroutine, in order) is what keeps a fast-exiting
// rank from looking like a lost peer to one still draining its
// scheduler. A run the leaver has NOT finished can no longer complete
// and aborts; either way the departure is recorded so any later run
// aborts at creation instead of hanging in termination detection. No
// FBye cascade is needed: the mesh is full, so every rank hears the
// leaver directly (by FLeave or by the broken socket itself).
func (n *Node) onLeave(p *peerConn, f Frame) {
	p.quiet.Store(true)
	ne := &NetError{Rank: n.rank, Peer: p.rank, Op: "leave",
		Err: fmt.Errorf("peer exited after run generation %d", f.A)}
	n.mu.Lock()
	if n.deadErr == nil {
		n.deadErr = ne
	}
	rt := n.attached
	n.mu.Unlock()
	if rt != nil && rt.gen > f.A {
		rt.abort(ne)
	}
}

// JobFrames returns the channel carrying service-mode job traffic for
// this node: FJob announcements when this rank is a worker, FJobDone
// reports when it is the coordinator. The channel is buffered; the
// serving loop must keep draining it.
func (n *Node) JobFrames() <-chan JobFrame {
	n.jobMu.Lock()
	defer n.jobMu.Unlock()
	if n.jobC == nil {
		n.jobC = make(chan JobFrame, 256)
	}
	return n.jobC
}

// onJob routes one piece of job traffic onto the job channel. It runs
// on a connection reader goroutine, so the push is non-blocking: with a
// wedged consumer the frame is counted dropped rather than stalling the
// reader (the serving protocol tolerates a lost report — the
// coordinator's wait is bounded — and a lost announcement is re-sent
// after recovery).
func (n *Node) onJob(p *peerConn, f Frame) {
	jf := JobFrame{Seq: f.A, Rank: p.rank, Done: f.Type == FJobDone}
	// The reader reclaims its pooled payload buffer when dispatch
	// returns; a job frame outlives that, so it owns a plain copy.
	jf.Payload = append([]byte(nil), f.Payload...)
	n.jobMu.Lock()
	if n.jobC == nil {
		n.jobC = make(chan JobFrame, 256)
	}
	c := n.jobC
	n.jobMu.Unlock()
	select {
	case c <- jf:
	default:
		atomic.AddInt64(&n.jobDrop, 1)
	}
}

// SendJob announces job seq to one rank (coordinator side).
func (n *Node) SendJob(rank int, seq int64, spec []byte) bool {
	return n.sendTo(rank, &Frame{Type: FJob, A: seq, Payload: spec})
}

// BroadcastJob announces job seq to every other rank. It reports how
// many ranks accepted the frame; a down peer simply misses it (the
// recovery path re-announces after the mesh rebuilds).
func (n *Node) BroadcastJob(seq int64, spec []byte) int {
	sent := 0
	for r := 0; r < n.world; r++ {
		if r == n.rank {
			continue
		}
		if n.SendJob(r, seq, spec) {
			sent++
		}
	}
	return sent
}

// SendJobDone reports this worker's outcome for job seq to the
// coordinator. A node whose closing latch is set stays silent: Die sets
// the latch before it aborts the run, so by the time a killed
// incarnation's follower unwinds to its report, the check here is
// definitive — and the report MUST not escape, because the coordinator
// keys reports by job sequence alone and a dead incarnation's failure
// would poison a job its respawned successor is about to rerun.
func (n *Node) SendJobDone(seq int64, report []byte) bool {
	n.mu.Lock()
	closing := n.closing
	n.mu.Unlock()
	if closing {
		return false
	}
	return n.sendTo(0, &Frame{Type: FJobDone, A: seq, Payload: report})
}

// Sever forcibly breaks the connection to a peer rank with no goodbye —
// a failure-injection hook: both sides observe the broken socket exactly
// as they would a crashed process, so tests can drive the peer-loss path
// (abort with a typed NetError, FBye cascade) without killing a process.
func (n *Node) Sever(rank int) {
	peers := n.peerTable()
	if rank == n.rank || peers == nil || peers[rank] == nil {
		return
	}
	peers[rank].conn.Close()
}

// Close tears the node down: connections close gracefully and, for a
// self-spawned world, the worker processes are reaped. It returns the
// first worker failure (a worker that exited non-zero — e.g. its local
// validation failed — must not vanish silently).
func (n *Node) Close() error {
	n.mu.Lock()
	n.closing = true
	completed := n.completedGen
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close()
		n.ln = nil
	}
	for r, p := range n.peerTable() {
		if p == nil {
			continue
		}
		// Say goodbye before closing: the FLeave flushes ahead of the
		// FIN, so a peer still draining its final run can tell planned
		// teardown from a lost peer. sendOpen — goodbyes go to edges
		// that exist, never open new ones.
		n.sendOpen(r, &Frame{Type: FLeave, A: completed})
		p.close()
	}
	// Frames stashed for edges that never opened die with the mesh; give
	// their pooled buffers back.
	n.drainLazyStashes()
	// Wait (bounded) for the writers to put those goodbyes on the wire.
	// Returning with an FLeave still queued lets the process exit with
	// it unsent, and the bare FIN the peer then reads is exactly the
	// signature of a rank death: a peer a halt-round behind in its final
	// run would abort — and, under recovery, try to rejoin a world that
	// is already gone. close() guarantees each connection's down latch
	// eventually closes (the writer shuts down after draining everything
	// ahead of the close marker), so this wait is normally instant.
	deadline := time.After(closeFlushGrace)
	for _, p := range n.peerTable() {
		if p == nil {
			continue
		}
		select {
		case <-p.down:
			continue
		case <-deadline:
		}
		break // grace exhausted: give up on the stragglers
	}
	// Every connection is down, so the ring readers are exiting and the
	// senders can no longer enter a link: unmap the shared segments and
	// retire the fd server. A segment whose peer still maps it stays
	// alive on the peer's side — munmap only drops this process's view.
	teardownShmLinks(n.peerTable())
	n.shmMu.Lock()
	n.shmSrv.close()
	n.shmMu.Unlock()
	var err error
	for _, w := range n.children {
		if werr := w.wait(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}
