package netrt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FHello, A: 3},
		{Type: FEager, Run: 7, Payload: []byte("hello world")},
		{Type: FRTS, Run: 2, A: 99, B: 1 << 20},
		{Type: FReport, Run: 1, A: 12, B: 1, C: -5, D: math.MaxInt64},
		{Type: FPut, A: 4, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: FBye, A: 1, Payload: []byte("rank 1 lost peer 0")},
		{Type: FPing},
	}
	for _, want := range frames {
		b, err := EncodeFrame(&want)
		if err != nil {
			t.Fatalf("encode %d: %v", want.Type, err)
		}
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("decode %d: %v", want.Type, err)
		}
		if n != len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeFrameRejectsCorruptHeaders(t *testing.T) {
	valid, err := EncodeFrame(&Frame{Type: FEager, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "truncated frame header"},
		{"short header", valid[:5], "truncated frame header"},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), "bad frame magic"},
		{"bad version", corrupt(func(b []byte) { b[2] = FrameVersion + 1 }), "frame version"},
		{"zero type", corrupt(func(b []byte) { b[3] = 0 }), "unknown frame type"},
		{"type past max", corrupt(func(b []byte) { b[3] = byte(frameTypeMax) }), "unknown frame type"},
		{"body too short", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], frameFixedBody-1)
		}), "frame body length"},
		{"body past cap", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], MaxFrameBody+1)
		}), "frame body length"},
		{"truncated body", valid[:len(valid)-1], "truncated frame body"},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.in); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeFrameStream(t *testing.T) {
	// Two frames back to back: DecodeFrame must consume exactly one.
	a, _ := EncodeFrame(&Frame{Type: FEager, Payload: []byte("first")})
	b, _ := EncodeFrame(&Frame{Type: FHalt, Run: 3})
	stream := append(append([]byte(nil), a...), b...)
	f1, n1, err := DecodeFrame(stream)
	if err != nil || string(f1.Payload) != "first" || n1 != len(a) {
		t.Fatalf("first frame: %+v consumed=%d err=%v", f1, n1, err)
	}
	f2, n2, err := DecodeFrame(stream[n1:])
	if err != nil || f2.Type != FHalt || f2.Run != 3 || n2 != len(b) {
		t.Fatalf("second frame: %+v consumed=%d err=%v", f2, n2, err)
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: FJoin, A: 2, Payload: []byte("127.0.0.1:4242")}
	if err := writeFrame(&buf, &want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeFrameRejectsBadFrames(t *testing.T) {
	if _, err := EncodeFrame(&Frame{Type: 0}); err == nil {
		t.Error("encode accepted type 0")
	}
	if _, err := EncodeFrame(&Frame{Type: byte(frameTypeMax)}); err == nil {
		t.Error("encode accepted type past max")
	}
	if _, err := EncodeFrame(&Frame{Type: FPut, Payload: make([]byte, MaxFrameBody)}); err == nil {
		t.Error("encode accepted payload past cap")
	}
}

func TestEnvRoundTrip(t *testing.T) {
	envs := []Env{
		{Kind: EnvPE, Array: -1, EP: 3, SrcPE: 0, DstPE: 7, Size: 64, Tag: -2, Val: 1.5},
		{Kind: EnvArray, Array: 2, EP: 1, Index: [4]int{1, 2, 3, -1}, SrcPE: 5, DstPE: 0,
			Vals: []float64{0.25, -3, math.Inf(1)}, Data: []byte{1, 2, 3, 4, 5}},
		{Kind: EnvCast, Array: 0, EP: 9, DstPE: -1, Size: 8},
	}
	for _, want := range envs {
		got, err := DecodeEnv(EncodeEnv(&want))
		if err != nil {
			t.Fatalf("decode kind %d: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("env round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeEnvRejectsCorruptInput(t *testing.T) {
	valid := EncodeEnv(&Env{Kind: EnvArray, EP: 1, Vals: []float64{1}, Data: []byte{9}})
	if _, err := DecodeEnv(valid[:envFixed-1]); err == nil {
		t.Error("accepted truncated envelope")
	}
	bad := append([]byte(nil), valid...)
	bad[0] = 0
	if _, err := DecodeEnv(bad); err == nil {
		t.Error("accepted unknown kind")
	}
	short := append([]byte(nil), valid[:len(valid)-1]...)
	if _, err := DecodeEnv(short); err == nil {
		t.Error("accepted truncated payload")
	}
	lying := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lying[57:], 1<<30) // nvals way past the body
	if _, err := DecodeEnv(lying); err == nil {
		t.Error("accepted oversized nvals")
	}
}

// FuzzFrameCodec asserts the decoder never panics on arbitrary input and
// that every successfully decoded frame survives an encode/decode round
// trip unchanged (envelope payloads of app frames are fuzzed through the
// Env decoder too, since that is what the runtime feeds them to).
func FuzzFrameCodec(f *testing.F) {
	seed := []*Frame{
		{Type: FEager, Run: 1, Payload: EncodeEnv(&Env{Kind: EnvPE, Array: -1, EP: 2, DstPE: 1})},
		{Type: FPut, A: 12, Payload: bytes.Repeat([]byte{7}, 64)},
		{Type: FReport, A: 5, B: 1, C: 10, D: 10},
	}
	for _, fr := range seed {
		b, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{'C', 'K', FrameVersion, FEager, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode claimed %d of %d bytes", n, len(data))
		}
		// DecodeFrameInto must agree with DecodeFrame exactly, both when
		// the scratch holds the payload (aliasing path) and when the
		// payload overflows it (fallback allocation path).
		scratch := make([]byte, 64)
		fi, ni, erri := DecodeFrameInto(data, scratch)
		if erri != nil || ni != n {
			t.Fatalf("DecodeFrameInto disagrees: n=%d err=%v, DecodeFrame n=%d", ni, erri, n)
		}
		if !reflect.DeepEqual(fr, fi) {
			t.Fatalf("DecodeFrameInto mismatch:\n got %+v\nwant %+v", fi, fr)
		}
		if len(fi.Payload) > 0 && len(fi.Payload) <= len(scratch) && &fi.Payload[0] != &scratch[0] {
			t.Fatal("DecodeFrameInto did not use the caller's scratch buffer")
		}
		re, err := EncodeFrame(&fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		fr2, n2, err := DecodeFrame(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-encode round trip mismatch:\n got %+v\nwant %+v", fr2, fr)
		}
		switch fr.Type {
		case FEager, FData, FCast:
			// Must not panic; errors are fine.
			if env, err := DecodeEnv(fr.Payload); err == nil {
				if _, err := DecodeEnv(EncodeEnv(&env)); err != nil {
					t.Fatalf("decoded envelope does not round trip: %v", err)
				}
			}
		}
	})
}
