package netrt

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// The shared-memory ring is an SPSC byte stream laid out inside a
// mapped segment both processes see:
//
//	offset   0: head (uint64, consumer-owned, free-running position)
//	offset  64: tail (uint64, producer-owned, free-running position)
//	offset 128: closed flag (uint64)
//	offset 192: data[capacity]  (capacity is a power of two)
//
// head and tail live on separate cache lines so the producer's store
// and the consumer's store never contend. Positions run free and are
// masked into the data array, so full (tail-head == capacity) and empty
// (tail-head == 0) are unambiguous without a wasted slot.
//
// The memory-ordering contract is the whole point: the producer copies
// frame bytes into data and THEN release-stores tail; the consumer
// acquire-loads tail and therefore observes the bytes the store
// published. Go's sync/atomic operations are sequentially consistent,
// which subsumes the release/acquire pairing — and, equally important,
// the race detector understands them, so the in-process worlds the
// tests run stay warning-free. This is the same publish discipline the
// CkDirect sentinel itself uses (memcpy, then release-store the final
// word), applied to a byte stream.
//
// The two wait words at offsets 136 and 144 are the futex doorbell: a
// side that has yielded fruitlessly arms its word (1), re-checks the
// condition (both operations are seq-cst, so arm-then-check against the
// peer's publish-then-check-arm cannot BOTH miss), and futex-waits on
// it; the peer clears the word and wakes after publishing. Cross-
// process, so no FUTEX_PRIVATE_FLAG. On non-Linux hosts the stub wait
// degrades to a short sleep — the old backoff behavior.
const (
	shmRingHdrBytes  = 192
	shmHeadOff       = 0
	shmTailOff       = 64
	shmClosedOff     = 128
	shmDataWaitOff   = 136
	shmSpaceWaitOff  = 144
	ringSpinYields   = 512               // cheap yields before arming the futex
	ringFutexWaitNS  = 2 * 1000 * 1000   // first bounded wait: re-check down/closed at 2ms
	// ringFutexWaitMaxNS caps the exponential escalation of the bounded
	// wait while nothing arrives. The timeout is only a liveness
	// fallback — real traffic wakes the futex explicitly — but a parked
	// waiter that re-arms every 2ms forever is a 500 Hz kernel timer per
	// ring direction, and a 64-rank in-process world holds hundreds of
	// idle ring ends: at 2ms flat their timer wakeups alone saturate a
	// small host and starve the application (observed as a whole-world
	// no-progress stall at 64 ranks on one CPU). Escalating 2ms → 256ms
	// keeps wake latency exact for active links and bounds a dead
	// peer's detection latency, while an idle link costs ~4 syscalls/s.
	ringFutexWaitMaxNS = 256 * 1000 * 1000
)

// shmRing wires the header atomics and data window of one direction of
// a shared segment. Both processes build their own shmRing over their
// own mapping of the same pages.
type shmRing struct {
	head      *atomicU64Ptr
	tail      *atomicU64Ptr
	closed    *atomicU64Ptr
	dataWait  *atomicU32Ptr // armed by a consumer out of bytes
	spaceWait *atomicU32Ptr // armed by a producer out of space
	data      []byte
	mask      uint64
}

// atomicU64Ptr is an atomic word living inside the mapped segment (not
// Go heap memory), accessed through unsafe pointer casts. A named type
// keeps the casts in one place.
type atomicU64Ptr struct{ v uint64 }

func (a *atomicU64Ptr) load() uint64   { return atomic.LoadUint64(&a.v) }
func (a *atomicU64Ptr) store(x uint64) { atomic.StoreUint64(&a.v, x) }

// atomicU32Ptr is the 32-bit variant — futex words are 32 bits.
type atomicU32Ptr struct{ v uint32 }

func (a *atomicU32Ptr) load() uint32   { return atomic.LoadUint32(&a.v) }
func (a *atomicU32Ptr) store(x uint32) { atomic.StoreUint32(&a.v, x) }

// newShmRing overlays a ring on region, whose length must be
// shmRingHdrBytes plus a power-of-two capacity and whose base must be
// 8-byte aligned (mmap returns page-aligned memory; the heap slices the
// unit tests use are checked here).
func newShmRing(region []byte) (*shmRing, error) {
	if len(region) <= shmRingHdrBytes {
		return nil, fmt.Errorf("netrt: shm ring region of %d bytes is too small", len(region))
	}
	capacity := len(region) - shmRingHdrBytes
	if capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("netrt: shm ring capacity %d is not a power of two", capacity)
	}
	if uintptr(unsafe.Pointer(&region[0]))%8 != 0 {
		return nil, fmt.Errorf("netrt: shm ring region is not 8-byte aligned")
	}
	return &shmRing{
		head:      (*atomicU64Ptr)(unsafe.Pointer(&region[shmHeadOff])),
		tail:      (*atomicU64Ptr)(unsafe.Pointer(&region[shmTailOff])),
		closed:    (*atomicU64Ptr)(unsafe.Pointer(&region[shmClosedOff])),
		dataWait:  (*atomicU32Ptr)(unsafe.Pointer(&region[shmDataWaitOff])),
		spaceWait: (*atomicU32Ptr)(unsafe.Pointer(&region[shmSpaceWaitOff])),
		data:      region[shmRingHdrBytes:],
		mask:      uint64(capacity - 1),
	}, nil
}

// close raises the closed flag and kicks both doorbells so a peer
// parked in a futex wait notices immediately instead of at its timeout.
func (r *shmRing) close() {
	r.closed.store(1)
	r.dataWait.store(0)
	futexWake(&r.dataWait.v)
	r.spaceWait.store(0)
	futexWake(&r.spaceWait.v)
}

// spinStep paces a poll loop that is waiting on the other process. The
// benchmark hosts run GOMAXPROCS=1, so every iteration MUST yield —
// a raw spin would starve the very goroutine that will produce (or
// consume) the bytes being waited for. After enough fruitless yields
// the wait escalates to short sleeps: an idle link between runs must
// not burn the only CPU.
func spinStep(spins int) int {
	switch {
	case spins < 1024:
		runtime.Gosched()
	case spins < 2048:
		time.Sleep(5 * time.Microsecond)
	case spins < 4096:
		time.Sleep(50 * time.Microsecond)
	default:
		time.Sleep(500 * time.Microsecond)
	}
	return spins + 1
}

// write copies all of b into the ring, blocking (with yields) while the
// ring is full. Writes larger than the ring capacity stream through in
// chunks as the consumer drains — a 64 MiB rendezvous body crosses a
// 1 MiB ring fine. It returns false when the link died (down closed or
// the ring's closed flag set) before the last byte was accepted; the
// frame is then dropped, which is correct because the only paths that
// close a link are already aborting or tearing down the run.
func (r *shmRing) write(b []byte, down <-chan struct{}) bool {
	spins := 0
	waitNS := int64(ringFutexWaitNS)
	for len(b) > 0 {
		tail := r.tail.load()
		space := uint64(len(r.data)) - (tail - r.head.load())
		if space == 0 {
			if r.closed.load() != 0 {
				return false
			}
			select {
			case <-down:
				return false
			default:
			}
			if spins < ringSpinYields {
				spins = spinStep(spins)
				continue
			}
			// Yields exhausted: arm the space doorbell and sleep on it
			// until the consumer frees room (it clears and wakes after
			// every head advance while the word is armed).
			r.spaceWait.store(1)
			if uint64(len(r.data))-(r.tail.load()-r.head.load()) > 0 || r.closed.load() != 0 {
				continue
			}
			futexWait(&r.spaceWait.v, 1, waitNS)
			if waitNS < ringFutexWaitMaxNS {
				waitNS *= 2
			}
			continue
		}
		spins = 0
		waitNS = ringFutexWaitNS
		n := len(b)
		if uint64(n) > space {
			n = int(space)
		}
		idx := tail & r.mask
		c := copy(r.data[idx:], b[:n])
		if c < n {
			copy(r.data, b[c:n])
		}
		r.tail.store(tail + uint64(n))
		if r.dataWait.load() != 0 {
			r.dataWait.store(0)
			futexWake(&r.dataWait.v)
		}
		b = b[n:]
	}
	return true
}

// shmRingReader adapts the consumer side to io.Reader so the exact
// same bufio-fed frame loop that serves a TCP socket serves the ring —
// byte-identical dispatch across transports by construction. A read
// blocks (with yields, then sleeps) until at least one byte is
// available, and reports io.EOF once the link is down or closed with
// the ring drained.
type shmRingReader struct {
	ring *shmRing
	down <-chan struct{}
}

func (rr *shmRingReader) Read(p []byte) (int, error) {
	r := rr.ring
	spins := 0
	waitNS := int64(ringFutexWaitNS)
	for {
		head := r.head.load()
		avail := r.tail.load() - head
		if avail > 0 {
			n := len(p)
			if uint64(n) > avail {
				n = int(avail)
			}
			idx := head & r.mask
			c := copy(p[:n], r.data[idx:])
			if c < n {
				copy(p[c:n], r.data)
			}
			r.head.store(head + uint64(n))
			if r.spaceWait.load() != 0 {
				r.spaceWait.store(0)
				futexWake(&r.spaceWait.v)
			}
			return n, nil
		}
		if r.closed.load() != 0 {
			return 0, io.EOF
		}
		select {
		case <-rr.down:
			return 0, io.EOF
		default:
		}
		if spins < ringSpinYields {
			spins = spinStep(spins)
			continue
		}
		// Yields exhausted: arm the data doorbell and sleep until the
		// producer publishes (it clears and wakes after every tail
		// advance while the word is armed). The bounded wait re-checks
		// closed/down above, so a dead peer that never wakes us still
		// surfaces within the timeout.
		r.dataWait.store(1)
		if r.tail.load() != head || r.closed.load() != 0 {
			continue
		}
		futexWait(&r.dataWait.v, 1, waitNS)
		if waitNS < ringFutexWaitMaxNS {
			waitNS *= 2
		}
	}
}
