package netrt

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// The shared-memory ring is an SPSC byte stream laid out inside a
// mapped segment both processes see:
//
//	offset   0: head (uint64, consumer-owned, free-running position)
//	offset  64: tail (uint64, producer-owned, free-running position)
//	offset 128: closed flag (uint64)
//	offset 192: data[capacity]  (capacity is a power of two)
//
// head and tail live on separate cache lines so the producer's store
// and the consumer's store never contend. Positions run free and are
// masked into the data array, so full (tail-head == capacity) and empty
// (tail-head == 0) are unambiguous without a wasted slot.
//
// The memory-ordering contract is the whole point: the producer copies
// frame bytes into data and THEN release-stores tail; the consumer
// acquire-loads tail and therefore observes the bytes the store
// published. Go's sync/atomic operations are sequentially consistent,
// which subsumes the release/acquire pairing — and, equally important,
// the race detector understands them, so the in-process worlds the
// tests run stay warning-free. This is the same publish discipline the
// CkDirect sentinel itself uses (memcpy, then release-store the final
// word), applied to a byte stream.
const (
	shmRingHdrBytes = 192
	shmHeadOff      = 0
	shmTailOff      = 64
	shmClosedOff    = 128
)

// shmRing wires the header atomics and data window of one direction of
// a shared segment. Both processes build their own shmRing over their
// own mapping of the same pages.
type shmRing struct {
	head   *atomicU64Ptr
	tail   *atomicU64Ptr
	closed *atomicU64Ptr
	data   []byte
	mask   uint64
}

// atomicU64Ptr is an atomic word living inside the mapped segment (not
// Go heap memory), accessed through unsafe pointer casts. A named type
// keeps the casts in one place.
type atomicU64Ptr struct{ v uint64 }

func (a *atomicU64Ptr) load() uint64   { return atomic.LoadUint64(&a.v) }
func (a *atomicU64Ptr) store(x uint64) { atomic.StoreUint64(&a.v, x) }

// newShmRing overlays a ring on region, whose length must be
// shmRingHdrBytes plus a power-of-two capacity and whose base must be
// 8-byte aligned (mmap returns page-aligned memory; the heap slices the
// unit tests use are checked here).
func newShmRing(region []byte) (*shmRing, error) {
	if len(region) <= shmRingHdrBytes {
		return nil, fmt.Errorf("netrt: shm ring region of %d bytes is too small", len(region))
	}
	capacity := len(region) - shmRingHdrBytes
	if capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("netrt: shm ring capacity %d is not a power of two", capacity)
	}
	if uintptr(unsafe.Pointer(&region[0]))%8 != 0 {
		return nil, fmt.Errorf("netrt: shm ring region is not 8-byte aligned")
	}
	return &shmRing{
		head:   (*atomicU64Ptr)(unsafe.Pointer(&region[shmHeadOff])),
		tail:   (*atomicU64Ptr)(unsafe.Pointer(&region[shmTailOff])),
		closed: (*atomicU64Ptr)(unsafe.Pointer(&region[shmClosedOff])),
		data:   region[shmRingHdrBytes:],
		mask:   uint64(capacity - 1),
	}, nil
}

// spinStep paces a poll loop that is waiting on the other process. The
// benchmark hosts run GOMAXPROCS=1, so every iteration MUST yield —
// a raw spin would starve the very goroutine that will produce (or
// consume) the bytes being waited for. After enough fruitless yields
// the wait escalates to short sleeps: an idle link between runs must
// not burn the only CPU.
func spinStep(spins int) int {
	switch {
	case spins < 1024:
		runtime.Gosched()
	case spins < 2048:
		time.Sleep(5 * time.Microsecond)
	case spins < 4096:
		time.Sleep(50 * time.Microsecond)
	default:
		time.Sleep(500 * time.Microsecond)
	}
	return spins + 1
}

// write copies all of b into the ring, blocking (with yields) while the
// ring is full. Writes larger than the ring capacity stream through in
// chunks as the consumer drains — a 64 MiB rendezvous body crosses a
// 1 MiB ring fine. It returns false when the link died (down closed or
// the ring's closed flag set) before the last byte was accepted; the
// frame is then dropped, which is correct because the only paths that
// close a link are already aborting or tearing down the run.
func (r *shmRing) write(b []byte, down <-chan struct{}) bool {
	spins := 0
	for len(b) > 0 {
		tail := r.tail.load()
		space := uint64(len(r.data)) - (tail - r.head.load())
		if space == 0 {
			if r.closed.load() != 0 {
				return false
			}
			select {
			case <-down:
				return false
			default:
			}
			spins = spinStep(spins)
			continue
		}
		spins = 0
		n := len(b)
		if uint64(n) > space {
			n = int(space)
		}
		idx := tail & r.mask
		c := copy(r.data[idx:], b[:n])
		if c < n {
			copy(r.data, b[c:n])
		}
		r.tail.store(tail + uint64(n))
		b = b[n:]
	}
	return true
}

// shmRingReader adapts the consumer side to io.Reader so the exact
// same bufio-fed frame loop that serves a TCP socket serves the ring —
// byte-identical dispatch across transports by construction. A read
// blocks (with yields, then sleeps) until at least one byte is
// available, and reports io.EOF once the link is down or closed with
// the ring drained.
type shmRingReader struct {
	ring *shmRing
	down <-chan struct{}
}

func (rr *shmRingReader) Read(p []byte) (int, error) {
	r := rr.ring
	spins := 0
	for {
		head := r.head.load()
		avail := r.tail.load() - head
		if avail > 0 {
			n := len(p)
			if uint64(n) > avail {
				n = int(avail)
			}
			idx := head & r.mask
			c := copy(p[:n], r.data[idx:])
			if c < n {
				copy(p[c:n], r.data)
			}
			r.head.store(head + uint64(n))
			return n, nil
		}
		if r.closed.load() != 0 {
			return 0, io.EOF
		}
		select {
		case <-rr.down:
			return 0, io.EOF
		default:
		}
		spins = spinStep(spins)
	}
}
