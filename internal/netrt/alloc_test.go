package netrt

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/bufpool"
)

// TestEagerSendAllocs pins the steady-state allocation budget of one
// eager send at ≤ 2 allocs/op (the pre-pool path encoded a fresh frame
// buffer per send and copy-assembled batches; the pooled single-pass
// encode plus vectored writer needs none in steady state — the budget
// leaves slack for scheduler noise, not for regressions).
//
// The rig is a hand-assembled half of a mesh: a real peerConn whose
// writer drains over loopback TCP into an io.Discard sink. Only the
// writer goroutine runs — no reader, no keepalive — so AllocsPerRun's
// global Mallocs delta sees just the send path plus the writer.
func TestEagerSendAllocs(t *testing.T) {
	if bufpool.RaceEnabled {
		t.Skip("bufpool debug tracking allocates per Get/Put under -race")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	remote := <-accepted
	defer remote.Close()
	go io.Copy(io.Discard, remote)

	n := &Node{rank: 0, world: 2, eagerMax: DefaultEagerMax, completedGen: -1}
	n.peers = make([]*peerConn, 2)
	p := newPeerConn(n, 1, conn)
	n.peers[1] = p
	n.publishPeers()
	go p.writer()
	defer p.shutdown()

	env := &Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 1, Tag: 3,
		Data: bytes.Repeat([]byte{0xAB}, 1024)}
	// Warm the buffer pool and the connection before measuring.
	for i := 0; i < 64; i++ {
		if !n.sendEnv(1, FEager, 0, env) {
			t.Fatal("send failed during warmup")
		}
	}
	if avg := testing.AllocsPerRun(500, func() {
		n.sendEnv(1, FEager, 0, env)
	}); avg > 2 {
		t.Errorf("eager send allocates %.2f per op, want <= 2 (pre-pool baseline ~6)", avg)
	}
}
