package netrt

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bufpool"
)

// Lazy dialing: the coordinator still distributes the full address map
// at bootstrap, but worker-to-worker sockets open at first contact
// instead of eagerly, so a world whose communication graph is sparse (a
// stencil halo, a reduction tree) opens O(N) connections instead of the
// O(N²) full mesh. The star (rank 0 <-> every worker) stays eager: it
// carries bootstrap, job traffic, the FBye relay, and dial requests.
//
// The connection initiator is ALWAYS the lower rank of an edge — the
// same convention as the eager bootstrap, which keeps the shm
// offer/accept roles (lower offers, higher accepts) working verbatim on
// the raw conn at first contact and makes simultaneous-open glare
// impossible. When the HIGHER rank needs an edge first, it sends an
// FDialReq through rank 0's star; the lower rank receives it and dials.
// Frames sent while the edge is in flight stash, in order, in the
// sender's per-rank lazySlot and flush before the connection publishes.
const (
	// lazyHandshakeTimeout bounds the first-frame read on an inbound
	// connection (FHello or FJoin), so a port-scanner's idle socket
	// cannot pin the accept goroutine.
	lazyHandshakeTimeout = 10 * time.Second
	// lazyReqTimeout bounds how long a requester waits for the lower
	// rank to dial back after an FDialReq before declaring the peer
	// lost. It comfortably exceeds a full dialRetry backoff run.
	lazyReqTimeout = 45 * time.Second
)

// lazySlot serializes edge establishment toward one peer rank.
type lazySlot struct {
	mu      sync.Mutex
	stash   [][]byte // encoded frames awaiting the edge, in send order
	dialing bool     // an establishment attempt (dial or FDialReq) is in flight
}

// inboundJoin is an FJoin taken off the accept loop, parked for a
// rejoin in progress.
type inboundJoin struct {
	p *peerConn
	f Frame
}

// lazyEnqueue stashes one encoded frame for a rank whose edge does not
// exist yet and kicks establishment. Ownership of b transfers on true.
func (n *Node) lazyEnqueue(rank int, b []byte) bool {
	s := &n.lazySlots[rank]
	s.mu.Lock()
	// The edge may have published while we took the slot lock.
	if t := n.peerTable(); t != nil && t[rank] != nil {
		s.mu.Unlock()
		return t[rank].send(b)
	}
	n.mu.Lock()
	closing := n.closing
	dead := n.dead[rank]
	epoch := n.epoch.Load()
	n.mu.Unlock()
	if closing || dead {
		s.mu.Unlock()
		return false
	}
	s.stash = append(s.stash, b)
	if !s.dialing {
		s.dialing = true
		if n.rank < rank {
			go n.lazyDial(rank, epoch)
		} else {
			// The lower rank must dial: relay the request through the
			// coordinator's star (off the slot lock — rank 0's outbox
			// can block) and watchdog the round trip.
			n.dialReqs.Add(1)
			req := Frame{Type: FDialReq, A: int64(rank), B: int64(n.rank)}
			go n.sendTo(0, &req)
			go n.lazyReqWatchdog(rank, epoch)
		}
	}
	s.mu.Unlock()
	return true
}

// lazyDial establishes the edge to a higher rank: dial, FHello, shm
// offer, then install. Runs on its own goroutine, throttled by the
// dialSem so an N-edge burst doesn't thundering-herd the accept queues.
func (n *Node) lazyDial(rank int, epoch int64) {
	n.dialSem <- struct{}{}
	defer func() { <-n.dialSem }()
	n.mu.Lock()
	var addr string
	if rank < len(n.addrs) {
		addr = n.addrs[rank]
	}
	n.mu.Unlock()
	if n.epoch.Load() != epoch {
		n.lazyAbandon(rank)
		return
	}
	if addr == "" {
		n.lazyDialFailed(rank, epoch, fmt.Errorf("no address for rank %d", rank))
		return
	}
	conn, err := n.dialRetry(addr)
	if err != nil {
		n.lazyDialFailed(rank, epoch, err)
		return
	}
	p := newPeerConn(n, rank, conn)
	p.epoch = epoch
	if err := writeFrame(conn, &Frame{Type: FHello, A: int64(n.rank)}); err != nil {
		conn.Close()
		n.lazyDialFailed(rank, epoch, err)
		return
	}
	// Lower rank of the edge: offer the shared segment, synchronously on
	// the raw conn, exactly as the eager bootstrap would have.
	if err := n.shmOffer(p); err != nil {
		conn.Close()
		n.lazyDialFailed(rank, epoch, err)
		return
	}
	n.connsDialed.Add(1)
	n.installLazy(rank, p)
}

// installLazy publishes a freshly established edge (dialed or accepted):
// start the connection goroutines, flush the stash in order, publish
// the connection table copy-on-write, clear the in-flight flag. The
// slot lock is held across the flush so concurrent senders keep
// stashing (or blocking) until order is guaranteed; the started writer
// drains the outbox concurrently, so the flush cannot deadlock.
func (n *Node) installLazy(rank int, p *peerConn) {
	s := &n.lazySlots[rank]
	s.mu.Lock()
	defer s.mu.Unlock()
	n.mu.Lock()
	stale := p.epoch != n.epoch.Load() || n.closing || n.peers[rank] != nil
	n.mu.Unlock()
	if stale {
		// A rejoin reset the mesh while this edge was in flight (or a
		// duplicate raced in): this connection belongs to a dead epoch.
		// Close it; the stash, if any, drains with the slot reset.
		if l := p.shm.Load(); l != nil {
			l.teardownNoReader()
		}
		p.quiet.Store(true)
		p.conn.Close()
		s.dialing = false
		return
	}
	p.start()
	for _, b := range s.stash {
		if !p.send(b) {
			bufpool.Put(b)
		}
	}
	s.stash = nil
	n.mu.Lock()
	if p.epoch == n.epoch.Load() && !n.closing {
		n.peers[rank] = p
		n.publishPeers()
	} else {
		p.close()
	}
	n.mu.Unlock()
	s.dialing = false
}

// lazyAbandon clears a slot whose establishment attempt was obsoleted
// by a mesh epoch bump; the rejoin path already drained the stash.
func (n *Node) lazyAbandon(rank int) {
	s := &n.lazySlots[rank]
	s.mu.Lock()
	s.dialing = false
	s.mu.Unlock()
}

// lazyDialFailed surfaces a failed establishment exactly like a broken
// live connection: drop the stash, record the dead peer, abort the
// attached run, cascade the FBye.
func (n *Node) lazyDialFailed(rank int, epoch int64, err error) {
	s := &n.lazySlots[rank]
	s.mu.Lock()
	for _, b := range s.stash {
		bufpool.Put(b)
	}
	s.stash = nil
	s.dialing = false
	s.mu.Unlock()
	ne := &NetError{Rank: n.rank, Peer: rank, Op: "dial", Err: err}
	n.mu.Lock()
	if n.epoch.Load() != epoch || n.closing {
		n.mu.Unlock()
		return
	}
	rt := n.attached
	if n.deadErr == nil {
		n.deadErr = ne
	}
	n.dead[rank] = true
	n.mu.Unlock()
	if rt != nil {
		rt.abort(ne)
		n.broadcastBye(rank, ne)
	}
}

// lazyReqWatchdog bounds the FDialReq round trip: if the lower rank has
// not dialed back within lazyReqTimeout, the peer (or the coordinator
// relay) is gone and the stashed frames' run must abort rather than
// hang in termination detection.
func (n *Node) lazyReqWatchdog(rank int, epoch int64) {
	deadline := time.Now().Add(lazyReqTimeout)
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		if n.epoch.Load() != epoch {
			return
		}
		if t := n.peerTable(); t != nil && t[rank] != nil {
			return
		}
		s := &n.lazySlots[rank]
		s.mu.Lock()
		done := !s.dialing
		s.mu.Unlock()
		if done {
			return
		}
	}
	n.lazyDialFailed(rank, epoch, fmt.Errorf("rank %d never dialed back after dial request", rank))
}

// onDialReq handles an FDialReq: rank 0 relays it to the rank that
// should dial; that rank kicks (idempotently) a lazyDial toward the
// requester.
func (n *Node) onDialReq(f Frame) {
	dialer, requester := int(f.A), int(f.B)
	if dialer < 0 || dialer >= n.world || requester <= dialer || requester >= n.world {
		return
	}
	if n.rank == 0 && dialer != 0 {
		n.sendOpen(dialer, &Frame{Type: FDialReq, A: f.A, B: f.B})
		return
	}
	if dialer != n.rank || !n.lazy {
		return
	}
	s := &n.lazySlots[requester]
	s.mu.Lock()
	t := n.peerTable()
	if (t == nil || t[requester] == nil) && !s.dialing {
		s.dialing = true
		go n.lazyDial(requester, n.epoch.Load())
	}
	s.mu.Unlock()
}

// acceptLoop owns the retained listener after bootstrap: inbound
// connections are first-contact dials (FHello) from lower ranks, or
// FJoins from respawned ranks rejoining under recovery, which park on
// joinC for the rejoin coordinator. It exits when the listener closes
// (Close or Die). The listener is captured by the caller while Start
// is still single-threaded — Close nils n.ln concurrently.
func (n *Node) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go n.handleInbound(conn)
	}
}

// handleInbound classifies one inbound connection by its first frame.
func (n *Node) handleInbound(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(lazyHandshakeTimeout))
	p := newPeerConn(n, -1, conn)
	f, err := readFrame(p.br)
	if err != nil {
		conn.Close()
		return
	}
	switch f.Type {
	case FHello:
		n.acceptLazy(p, f)
	case FJoin:
		conn.SetReadDeadline(time.Time{})
		f.Payload = append([]byte(nil), f.Payload...)
		select {
		case n.joinC <- inboundJoin{p: p, f: f}:
		default:
			conn.Close() // no rejoin in progress could be this far behind
		}
	default:
		conn.Close()
	}
}

// acceptLazy runs the higher rank's side of a first-contact edge: the
// dialer is the lower rank and just offered the shared segment, so
// accept (or decline) it on the raw conn, then install.
func (n *Node) acceptLazy(p *peerConn, f Frame) {
	r := int(f.A)
	if r < 0 || r >= n.rank || !n.lazy {
		p.conn.Close()
		return
	}
	p.rank = r
	if err := n.shmAccept(p); err != nil {
		p.conn.Close()
		return
	}
	p.conn.SetReadDeadline(time.Time{})
	n.connsAccepted.Add(1)
	n.installLazy(r, p)
}

// drainLazyStashes returns every stashed frame's pooled buffer; Close,
// Die and Rejoin call it once no flush can happen anymore.
func (n *Node) drainLazyStashes() {
	for i := range n.lazySlots {
		s := &n.lazySlots[i]
		s.mu.Lock()
		for _, b := range s.stash {
			bufpool.Put(b)
		}
		s.stash = nil
		s.dialing = false
		s.mu.Unlock()
	}
}
