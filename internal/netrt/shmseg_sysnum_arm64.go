//go:build linux && arm64

package netrt

const sysMemfdCreate = 279
