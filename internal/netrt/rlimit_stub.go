//go:build !linux

package netrt

// Non-linux builds skip the fd-budget pre-check.
func nofileLimit() (uint64, bool) { return 0, false }
