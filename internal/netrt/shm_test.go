package netrt

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
)

// skipNoShm skips tests that need the linux shm transport.
func skipNoShm(t *testing.T) {
	t.Helper()
	if !shmSupported {
		t.Skip("shm transport unsupported on this platform")
	}
}

// shmLinkOf returns the negotiated link from rank a to rank b, or nil.
func shmLinkOf(nodes []*Node, a, b int) *shmLink {
	p := nodes[a].peerTable()[b]
	if p == nil {
		return nil
	}
	return p.shm.Load()
}

// TestShmLinksNegotiated checks that a co-located world comes up with a
// shared-memory link on every edge, that app frames genuinely ride the
// rings (the ring positions move), and that payloads cross intact.
func TestShmLinksNegotiated(t *testing.T) {
	skipNoShm(t)
	// Eager mesh: this test pins the bootstrap-time negotiation on every
	// edge; first-contact negotiation under lazy dialing is covered in
	// lazy_test.go.
	nodes := startWorldConfig(t, 3, Config{LazyOff: true})
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a == b {
				continue
			}
			if shmLinkOf(nodes, a, b) == nil {
				t.Fatalf("edge %d->%d has no shm link", a, b)
			}
		}
	}
	rts := make([]*Runtime, 3)
	for i, n := range nodes {
		rt, err := n.NewRuntime(3)
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	payload := bytes.Repeat([]byte{0xA5}, 600)
	var delivered atomic.Int64
	var bad atomic.Int64
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			if !bytes.Equal(e.Data, payload) {
				bad.Add(1)
			}
			delivered.Add(1)
			bufpool.Put(pooled)
		})
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 1, Data: payload})
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 2, Data: payload})
	})
	runAll(rts)
	if delivered.Load() != 2 || bad.Load() != 0 {
		t.Fatalf("delivered=%d corrupt=%d, want 2/0", delivered.Load(), bad.Load())
	}
	if l := shmLinkOf(nodes, 0, 1); l.out.tail.load() == 0 {
		t.Fatal("eager frame did not ride the shm ring")
	}
}

// TestShmOffStaysOnTCP pins the opt-out: with ShmOff everywhere, no
// edge negotiates a link (the handshake declines in protocol) and
// traffic still flows over TCP.
func TestShmOffStaysOnTCP(t *testing.T) {
	nodes, err := StartLocalConfig(2, Config{ShmOff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	if shmLinkOf(nodes, 0, 1) != nil || shmLinkOf(nodes, 1, 0) != nil {
		t.Fatal("ShmOff world negotiated a shm link")
	}
	exchangeOne(t, nodes)
}

// TestShmMixedWorldDeclines brings up a world where only one side
// enables shm: the handshake must complete (no hang) with every edge on
// TCP, whichever side of an edge is the offerer.
func TestShmMixedWorldDeclines(t *testing.T) {
	skipNoShm(t)
	for flip := 0; flip < 2; flip++ {
		nodes := startMixedWorld(t, []bool{flip == 0, flip == 1})
		if shmLinkOf(nodes, 0, 1) != nil || shmLinkOf(nodes, 1, 0) != nil {
			t.Fatalf("mixed world (off rank %d) negotiated a link", flip)
		}
		exchangeOne(t, nodes)
		for _, n := range nodes {
			n.Close()
		}
	}
}

// startMixedWorld bootstraps an in-process world with per-rank ShmOff.
func startMixedWorld(t *testing.T, shmOff []bool) []*Node {
	t.Helper()
	world := len(shmOff)
	nodes := make([]*Node, world)
	errs := make([]error, world)
	addrC := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		nodes[0], errs[0] = Start(Config{Rank: 0, World: world, Coord: "127.0.0.1:0",
			ShmOff: shmOff[0], OnListen: func(a string) { addrC <- a }})
	}()
	addr := <-addrC
	for r := 1; r < world; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodes[r], errs[r] = Start(Config{Rank: r, World: world, Coord: addr, ShmOff: shmOff[r]})
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return nodes
}

// exchangeOne round-trips one eager message across a two-rank world.
func exchangeOne(t *testing.T, nodes []*Node) {
	t.Helper()
	rts := make([]*Runtime, len(nodes))
	for i, n := range nodes {
		rt, err := n.NewRuntime(len(nodes))
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
	}
	var delivered atomic.Int64
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) { delivered.Add(1); bufpool.Put(pooled) })
	}
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 1, Data: []byte{1, 2, 3}})
	})
	runAll(rts)
	if delivered.Load() != 1 {
		t.Fatalf("delivered %d, want 1", delivered.Load())
	}
}

// TestEagerBoundary pins the eager/rendezvous split at exactly the
// threshold, on both transports: a message whose wire size equals
// -net.eager must go eager (threshold inclusive), one byte more must go
// rendezvous, and the two transports must agree — the split is decided
// once in SendMsg, before the transport is chosen.
func TestEagerBoundary(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shmOff bool
	}{{"shm", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.shmOff {
				skipNoShm(t)
			}
			const eagerMax = 512
			nodes, err := StartLocalConfig(2, Config{ShmOff: tc.shmOff, EagerMax: eagerMax})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				for _, n := range nodes {
					n.Close()
				}
			}()
			rts := make([]*Runtime, 2)
			for i, n := range nodes {
				rt, err := n.NewRuntime(2)
				if err != nil {
					t.Fatal(err)
				}
				rts[i] = rt
			}
			sizes := map[int]int{} // delivered data length -> count
			var mu sync.Mutex
			for i := range rts {
				rt := rts[i]
				rt.SetDeliver(func(e Env, pooled []byte) {
					mu.Lock()
					sizes[len(e.Data)]++
					mu.Unlock()
					bufpool.Put(pooled)
				})
			}
			// EnvWireSize = envFixed + len(Data): pick Data lengths that
			// put the encoded message at threshold-1, exactly at the
			// threshold, and one past it.
			wire := []int{eagerMax - 1, eagerMax, eagerMax + 1}
			rts[0].Enqueue(0, func() {
				for _, w := range wire {
					rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 1,
						Data: make([]byte, w-envFixed)})
				}
			})
			runAll(rts)
			for _, rt := range rts {
				if errs := rt.Errors(); len(errs) > 0 {
					t.Fatal(errs)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for _, w := range wire {
				if sizes[w-envFixed] != 1 {
					t.Errorf("wire size %d delivered %d times, want once", w, sizes[w-envFixed])
				}
			}
			// The rendezvous machinery must have been used exactly once:
			// only the threshold+1 message allocates a transfer id.
			rts[0].xferMu.Lock()
			xfers := rts[0].nextXfer
			rts[0].xferMu.Unlock()
			if xfers != 1 {
				t.Errorf("rendezvous transfers = %d, want exactly 1 (only the %d-byte message)",
					xfers, eagerMax+1)
			}
		})
	}
}

// TestShmDirectPutDoorbell drives the registered-buffer fast path at
// the transport level: the receiver carves a destination out of the
// shared arena and registers it, the sender's SendPut then deposits by
// memcpy and rings a 48-byte doorbell, and the receiver's doorbell hook
// observes the sentinel word with the body already in place.
func TestShmDirectPutDoorbell(t *testing.T) {
	skipNoShm(t)
	nodes := startWorld(t, 2)
	rts := make([]*Runtime, 2)
	for i, n := range nodes {
		rt, err := n.NewRuntime(2)
		if err != nil {
			t.Fatal(err)
		}
		rts[i] = rt
		rt.SetDeliver(func(e Env, pooled []byte) { bufpool.Put(pooled) })
	}

	const handleID, size = 7, 64
	buf, off, ok := rts[1].AllocPutRegion(0, size)
	if !ok {
		t.Fatal("AllocPutRegion failed despite a live shm link")
	}
	payload := bytes.Repeat([]byte{0xC7}, size)
	copy(payload[size-8:], []byte{1, 2, 3, 4, 5, 6, 7, 8}) // sentinel word
	var last atomic.Uint64
	var bodyOK atomic.Bool
	rt1 := rts[1]
	rt1.SetPutDoorbell(func(id int64, l uint64) {
		rt1.PutIssued()
		if id == handleID {
			last.Store(l)
			bodyOK.Store(bytes.Equal(buf[:size-8], payload[:size-8]))
		}
		rt1.Enqueue(1, func() { rt1.PutDetected() })
	})
	var sank atomic.Int64
	rt1.SetPutSink(func(id int64, b []byte) { sank.Add(1) })
	if !rts[1].RegisterPutBuffer(0, handleID, off, size) {
		t.Fatal("RegisterPutBuffer send failed")
	}
	// The registration is a control frame on the TCP stream; wait for
	// the sender's connection to record it before putting.
	sender := nodes[0].peerTable()[1]
	deadline := time.Now().Add(5 * time.Second)
	for {
		sender.regMu.Lock()
		_, ok := sender.regs[handleID]
		sender.regMu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registration never reached the sender")
		}
		time.Sleep(time.Millisecond)
	}
	rts[0].Enqueue(0, func() { rts[0].SendPut(1, handleID, payload) })
	runAll(rts)
	for i, rt := range rts {
		if errs := rt.Errors(); len(errs) > 0 {
			t.Fatalf("rank %d: %v", i, errs)
		}
	}
	if got := last.Load(); got != 0x0807060504030201 {
		t.Fatalf("doorbell sentinel word %#x, want the payload's last word", got)
	}
	if !bodyOK.Load() {
		t.Fatal("arena body did not match the payload at doorbell time")
	}
	if sank.Load() != 0 {
		t.Fatal("registered put fell back to the frame path")
	}
}

// memfdCount counts this process's open memfd file descriptors.
func memfdCount(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name()))
		if err != nil {
			continue // the fd used to read the directory, or already closed
		}
		if strings.Contains(target, "memfd:") {
			n++
		}
	}
	return n
}

// TestShmNoFdLeakAcrossEpochs pins the segment-lifecycle discipline:
// the memfd closes as soon as both sides map the segment, so a running
// shm world holds ZERO memfd descriptors — across bootstrap, an
// in-process rank kill, the rejoin that remaps fresh segments for the
// new mesh epoch, and final Close.
func TestShmNoFdLeakAcrossEpochs(t *testing.T) {
	skipNoShm(t)
	if before := memfdCount(t); before != 0 {
		t.Fatalf("%d memfds open before the test", before)
	}

	var mu sync.Mutex
	nodes := make([]*Node, 2)
	respawn := func(r int) {
		n, err := Start(Config{Rank: r, World: 2, Coord: nodes[0].Addr(), Recover: true})
		if err != nil {
			t.Errorf("respawn rank %d: %v", r, err)
			return
		}
		mu.Lock()
		nodes[r] = n
		mu.Unlock()
	}
	ns, err := StartLocalConfig(2, Config{Recover: true, OnRespawn: respawn})
	if err != nil {
		t.Fatal(err)
	}
	copy(nodes, ns)
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	if shmLinkOf(nodes, 0, 1) == nil {
		t.Fatal("no shm link after bootstrap")
	}
	if got := memfdCount(t); got != 0 {
		t.Fatalf("%d memfds open with the world up (fd must close once mapped)", got)
	}

	// Kill rank 1 in-process and rebuild the mesh: the new epoch must
	// negotiate a FRESH segment (remap, not reuse) and still hold no fd.
	oldLink := shmLinkOf(nodes, 0, 1)
	nodes[1].Die()
	deadline := time.Now().Add(5 * time.Second)
	for len(nodes[0].DeadRanks()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never observed the death")
		}
		time.Sleep(time.Millisecond)
	}
	if err := nodes[0].Rejoin(); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	mu.Lock()
	n1 := nodes[1]
	mu.Unlock()
	if n1 == nil {
		t.Fatal("respawn did not install a new node")
	}
	newLink := shmLinkOf(nodes, 0, 1)
	if newLink == nil {
		t.Fatal("no shm link after rejoin")
	}
	if newLink == oldLink {
		t.Fatal("rejoin reused the dead epoch's segment instead of remapping")
	}
	if got := memfdCount(t); got != 0 {
		t.Fatalf("%d memfds open after rejoin", got)
	}
	exchangeOne(t, nodes)

	mu.Lock()
	for _, n := range nodes {
		n.Close()
	}
	nodes[0], nodes[1] = nil, nil
	mu.Unlock()
	if got := memfdCount(t); got != 0 {
		t.Fatalf("%d memfds open after Close", got)
	}
}

// FuzzShmTransport feeds one fuzzed frame through both transports — a
// real TCP pair and an shm ring pair — and requires byte-identical
// dispatch: same frame meta, same payload bytes, from the same encoded
// input. The ring reader IS the TCP read loop over a different
// io.Reader, and this pins that equivalence against drift.
func FuzzShmTransport(f *testing.F) {
	f.Add(byte(FEager), int64(1), int64(2), int64(3), int64(4), int64(5), []byte("payload"))
	f.Add(byte(FPut), int64(0), int64(12), int64(1), int64(-9), int64(0), bytes.Repeat([]byte{7}, 600))
	f.Add(byte(FProbe), int64(9), int64(0), int64(0), int64(0), int64(0), []byte{})
	f.Add(byte(FShmReg), int64(2), int64(7), int64(64), int64(128), int64(0), []byte{})
	f.Fuzz(func(t *testing.T, typ byte, run, a, b, c, d int64, payload []byte) {
		fr := &Frame{Type: typ, Run: run, A: a, B: b, C: c, D: d, Payload: payload}
		enc, err := EncodeFrame(fr)
		if err != nil {
			return // invalid type or oversized payload: never reaches a transport
		}

		type arrival struct {
			m       frameMeta
			payload []byte
			err     error
		}
		readOne := func(br *bufio.Reader) arrival {
			m, err := readFrameMeta(br)
			if err != nil {
				return arrival{err: err}
			}
			p := make([]byte, m.payloadLen)
			if _, err := io.ReadFull(br, p); err != nil {
				return arrival{err: err}
			}
			return arrival{m: m, payload: p}
		}

		// shm ring pair (writes chunk through a ring smaller than many
		// fuzzed frames, so producer and consumer run concurrently).
		ring, err := newShmRing(make([]byte, shmRingHdrBytes+4096))
		if err != nil {
			t.Fatal(err)
		}
		down := make(chan struct{})
		defer close(down)
		go ring.write(enc, down)
		viaRing := readOne(bufio.NewReaderSize(&shmRingReader{ring: ring, down: down}, ioBufBytes))

		// TCP pair.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			c.Write(enc)
		}()
		sc, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		sc.SetReadDeadline(time.Now().Add(10 * time.Second))
		viaTCP := readOne(bufio.NewReaderSize(sc, ioBufBytes))

		if (viaRing.err == nil) != (viaTCP.err == nil) {
			t.Fatalf("transports disagree on decode: ring=%v tcp=%v", viaRing.err, viaTCP.err)
		}
		if viaRing.err != nil {
			return
		}
		if viaRing.m != viaTCP.m {
			t.Fatalf("frame meta diverged:\n ring %+v\n tcp  %+v", viaRing.m, viaTCP.m)
		}
		if !bytes.Equal(viaRing.payload, viaTCP.payload) {
			t.Fatal("payload bytes diverged between transports")
		}
		if viaRing.m.typ != fr.Type || viaRing.m.run != fr.Run ||
			viaRing.m.a != fr.A || viaRing.m.b != fr.B ||
			viaRing.m.c != fr.C || viaRing.m.d != fr.D ||
			!bytes.Equal(viaRing.payload, fr.Payload) {
			t.Fatalf("dispatch fields diverged from the encoded frame: %+v vs %+v", viaRing.m, fr)
		}
	})
}
