package netrt

import "flag"

// RegisterFlags binds the standard -net.* flag set and returns the
// Config they populate. Call before flag.Parse; pass the filled Config
// to Start once flags are parsed.
//
//	-net.rank   this process's rank (-1 = self-spawn the world)
//	-net.world  number of processes
//	-net.peers  static launch: comma-separated listen addresses by rank
//	-net.coord  coordinator address (rank 0 listens, workers dial)
//	-net.eager  eager/rendezvous threshold in bytes
func RegisterFlags() *Config {
	cfg := &Config{}
	flag.IntVar(&cfg.Rank, "net.rank", -1, "net backend: this process's rank (-1 = self-spawn workers)")
	flag.IntVar(&cfg.World, "net.world", 1, "net backend: number of processes")
	flag.StringVar(&cfg.PeersCSV, "net.peers", "", "net backend: comma-separated listen addresses, one per rank (static launch)")
	flag.StringVar(&cfg.Coord, "net.coord", "", "net backend: coordinator address (rank 0 listens, workers dial in)")
	flag.IntVar(&cfg.EagerMax, "net.eager", DefaultEagerMax, "net backend: eager/rendezvous threshold in bytes")
	return cfg
}
