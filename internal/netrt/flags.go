package netrt

import (
	"flag"
	"strconv"
)

// RegisterFlags binds the standard -net.* flag set and returns the
// Config they populate. Call before flag.Parse; pass the filled Config
// to Start once flags are parsed.
//
//	-net.rank   this process's rank (-1 = self-spawn the world)
//	-net.world  number of processes
//	-net.peers  static launch: comma-separated listen addresses by rank
//	-net.coord  coordinator address (rank 0 listens, workers dial)
//	-net.eager  eager/rendezvous threshold in bytes
//	-net.shm    shared-memory transport for co-located ranks (default on)
//	-net.shmring   per-direction shm ring bytes (rounded up to a power of two)
//	-net.shmarena  per-direction shm put-arena bytes
//	-net.seed   base seed for the node's deterministic RNG streams
//	-net.termfanout  termination-tree fanout (default 8)
//	-net.lazy   lazy first-contact worker-to-worker dialing (default on)
func RegisterFlags() *Config {
	cfg := &Config{}
	flag.IntVar(&cfg.Rank, "net.rank", -1, "net backend: this process's rank (-1 = self-spawn workers)")
	flag.IntVar(&cfg.World, "net.world", 1, "net backend: number of processes")
	flag.StringVar(&cfg.PeersCSV, "net.peers", "", "net backend: comma-separated listen addresses, one per rank (static launch)")
	flag.StringVar(&cfg.Coord, "net.coord", "", "net backend: coordinator address (rank 0 listens, workers dial in)")
	flag.IntVar(&cfg.EagerMax, "net.eager", DefaultEagerMax, "net backend: eager/rendezvous threshold in bytes")
	// Config's zero value enables shm, so the flag inverts into ShmOff.
	flag.BoolFunc("net.shm", "net backend: shared-memory transport between co-located ranks (default true)", func(s string) error {
		v, err := strconv.ParseBool(s)
		cfg.ShmOff = !v
		return err
	})
	flag.IntVar(&cfg.ShmRingBytes, "net.shmring", 0, "net backend: per-direction shm ring bytes (0 = 1 MiB default)")
	flag.IntVar(&cfg.ShmArenaBytes, "net.shmarena", 0, "net backend: per-direction shm put-arena bytes (0 = 4 MiB default)")
	flag.Uint64Var(&cfg.Seed, "net.seed", 0, "net backend: base RNG seed for backoff jitter and shm tokens (0 = built-in)")
	flag.IntVar(&cfg.TermFanout, "net.termfanout", DefaultTermFanout, "net backend: termination-tree fanout (children per interior rank)")
	// Like -net.shm, the zero Config enables lazy dialing, so the flag
	// inverts into LazyOff. Static -net.peers launches stay eager
	// regardless (they have no coordinator star to relay dial requests).
	flag.BoolFunc("net.lazy", "net backend: open worker-to-worker connections on first contact (default true)", func(s string) error {
		v, err := strconv.ParseBool(s)
		cfg.LazyOff = !v
		return err
	})
	return cfg
}
