//go:build !linux

package netrt

import "time"

// Non-linux hosts have no futex: the wait degrades to a short sleep
// (the old backoff behavior, with a tighter bound) and the wake is a
// no-op — the sleeper notices the published state on its next check.
func futexWait(addr *uint32, val uint32, timeoutNS int64) {
	d := time.Duration(timeoutNS)
	if d > 50*time.Microsecond {
		d = 50 * time.Microsecond
	}
	time.Sleep(d)
}

func futexWake(addr *uint32) {}
