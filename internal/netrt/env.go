package netrt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Env kinds: what the wire envelope addresses on the receiving process.
const (
	// EnvPE targets a PE-level handler (runtime services).
	EnvPE byte = iota + 1
	// EnvArray targets one chare-array element's entry method.
	EnvArray
	// EnvCast targets every local element of a chare array (one frame
	// per remote process; the receiver fans out locally).
	EnvCast
)

// Env is the wire envelope of one Charm message. It carries only
// wire-serializable identities — array ordinal, element index, EP — plus
// the Message fields; the receiving process re-binds them to its own
// (identical, SPMD-constructed) handler tables.
type Env struct {
	Kind  byte
	Array int // array ordinal in registration order; -1 for EnvPE
	EP    int
	Index [4]int
	SrcPE int
	DstPE int
	Size  int
	Tag   int
	Val   float64
	Vals  []float64
	Data  []byte
}

// envFixed is the byte length of the fixed portion of an encoded Env.
const envFixed = 1 + 4 + 4 + 16 + 4 + 4 + 8 + 8 + 8 + 4 + 4

// AppendEnv encodes e onto dst.
func AppendEnv(dst []byte, e *Env) []byte {
	dst = append(dst, e.Kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.Array)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.EP)))
	for _, v := range e.Index {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.SrcPE)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(e.DstPE)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.Size)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.Tag)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Val))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Vals)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Data)))
	for _, v := range e.Vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return append(dst, e.Data...)
}

// EnvWireSize is the exact encoded size of e — computable without
// encoding, so the eager/rendezvous decision and the pooled frame
// buffer sizing need no throwaway encode pass.
func EnvWireSize(e *Env) int { return envFixed + 8*len(e.Vals) + len(e.Data) }

// EncodeEnv encodes e into a fresh buffer.
func EncodeEnv(e *Env) []byte {
	return AppendEnv(make([]byte, 0, EnvWireSize(e)), e)
}

// DecodeEnv decodes an envelope. The returned Env owns its slices.
func DecodeEnv(b []byte) (Env, error) {
	e, err := DecodeEnvShared(b)
	if err == nil && e.Data != nil {
		e.Data = append([]byte(nil), e.Data...)
	}
	return e, err
}

// DecodeEnvShared decodes an envelope whose Data aliases b in place —
// the zero-copy receive path. The caller guarantees b outlives every
// use of the envelope (for pooled wire buffers, until the release
// point after the handler completes). Vals is still materialized: the
// wire layout is packed little-endian, not an addressable []float64.
func DecodeEnvShared(b []byte) (Env, error) {
	var e Env
	if len(b) < envFixed {
		return e, fmt.Errorf("netrt: truncated envelope (%d bytes)", len(b))
	}
	e.Kind = b[0]
	if e.Kind != EnvPE && e.Kind != EnvArray && e.Kind != EnvCast {
		return e, fmt.Errorf("netrt: unknown envelope kind %d", e.Kind)
	}
	e.Array = int(int32(binary.LittleEndian.Uint32(b[1:])))
	e.EP = int(int32(binary.LittleEndian.Uint32(b[5:])))
	for i := range e.Index {
		e.Index[i] = int(int32(binary.LittleEndian.Uint32(b[9+4*i:])))
	}
	e.SrcPE = int(int32(binary.LittleEndian.Uint32(b[25:])))
	e.DstPE = int(int32(binary.LittleEndian.Uint32(b[29:])))
	e.Size = int(int64(binary.LittleEndian.Uint64(b[33:])))
	e.Tag = int(int64(binary.LittleEndian.Uint64(b[41:])))
	e.Val = math.Float64frombits(binary.LittleEndian.Uint64(b[49:]))
	nvals := int(binary.LittleEndian.Uint32(b[57:]))
	ndata := int(binary.LittleEndian.Uint32(b[61:]))
	rest := b[envFixed:]
	if nvals < 0 || ndata < 0 || nvals > len(rest)/8 || len(rest) != 8*nvals+ndata {
		return e, fmt.Errorf("netrt: envelope length mismatch (%d vals, %d data, %d trailing bytes)", nvals, ndata, len(rest))
	}
	if nvals > 0 {
		e.Vals = make([]float64, nvals)
		for i := range e.Vals {
			e.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
		}
	}
	if ndata > 0 {
		e.Data = rest[8*nvals:]
	}
	return e, nil
}
