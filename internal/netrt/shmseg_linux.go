//go:build linux

package netrt

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"unsafe"
)

// shmSupported gates the shared-memory transport at build level; the
// handshake frames still flow on unsupported platforms (the offer is
// empty and the answer is a decline), so mixed worlds stay in protocol.
const shmSupported = true

const mfdCloexec = 0x0001 // MFD_CLOEXEC

// createShmFd allocates an anonymous shared-memory file of the given
// size and returns its file descriptor, ready to be passed to the peer
// over SCM_RIGHTS. memfd_create is the primary path: the file lives
// only as long as some process holds an fd or a mapping, so a kill -9
// anywhere frees it with no tmpfs litter. Kernels without memfd fall
// back to an unlinked temp file, which has the same
// last-reference-frees-it lifecycle. CLOEXEC matters on both paths:
// self-spawned worker processes must not inherit every segment their
// parent ever created — that would leak fds across respawns and
// defeat the /proc/self/fd accounting the leak test asserts.
func createShmFd(size int) (int, error) {
	if sysMemfdCreate != 0 {
		name, err := syscall.BytePtrFromString("ckshm")
		if err == nil {
			r0, _, errno := syscall.Syscall(sysMemfdCreate,
				uintptr(unsafe.Pointer(name)), uintptr(mfdCloexec), 0)
			if errno == 0 {
				fd := int(r0)
				if err := syscall.Ftruncate(fd, int64(size)); err != nil {
					syscall.Close(fd)
					return -1, err
				}
				return fd, nil
			}
			if errno != syscall.ENOSYS {
				return -1, errno
			}
		}
	}
	// Fallback: an unlinked temp file. Dup the fd out of the *os.File so
	// the file object can close without tearing down the descriptor we
	// hand to the peer.
	f, err := os.CreateTemp("", "ckshm-*")
	if err != nil {
		return -1, err
	}
	os.Remove(f.Name())
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return -1, err
	}
	fd, err := syscall.Dup(int(f.Fd()))
	f.Close()
	if err != nil {
		return -1, err
	}
	syscall.CloseOnExec(fd)
	return fd, nil
}

// mapShmFd maps size bytes of the shared file into this process. The
// returned memory is page-aligned (so the ring header atomics are
// naturally aligned) and shared: stores made through one process's
// mapping are the other process's loads.
func mapShmFd(fd, size int) ([]byte, error) {
	return syscall.Mmap(fd, 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// unmapShm releases one process's mapping; the segment itself lives
// until every mapping and fd is gone.
func unmapShm(b []byte) {
	if b != nil {
		syscall.Munmap(b)
	}
}

func closeFd(fd int) {
	if fd >= 0 {
		syscall.Close(fd)
	}
}

// fdSize reports the size of the shared file behind fd — the acceptor
// verifies the segment is as large as the offer claims before mapping.
func fdSize(fd int) (int64, error) {
	var st syscall.Stat_t
	if err := syscall.Fstat(fd, &st); err != nil {
		return 0, err
	}
	return st.Size, nil
}

var (
	hostIDOnce sync.Once
	hostIDVal  string
)

// hostID identifies this machine for the co-location check: two ranks
// exchange it during the shm handshake and only map a segment when they
// match. The kernel boot ID is unique per boot per machine (containers
// sharing a kernel share it, which is correct — they can share memory);
// the hostname is appended as a tiebreaker for environments that mask
// the boot ID.
func hostID() string {
	hostIDOnce.Do(func() {
		b, _ := os.ReadFile("/proc/sys/kernel/random/boot_id")
		hn, _ := os.Hostname()
		hostIDVal = strings.TrimSpace(string(b)) + "/" + hn
	})
	return hostIDVal
}

// sendFd passes fd over a unix socket via SCM_RIGHTS, with a 1-byte
// in-band payload so the receiver has something to block on.
func sendFd(conn *net.UnixConn, fd int) error {
	rights := syscall.UnixRights(fd)
	_, _, err := conn.WriteMsgUnix([]byte{1}, rights, nil)
	return err
}

// recvFd receives one fd passed via SCM_RIGHTS.
func recvFd(conn *net.UnixConn) (int, error) {
	buf := make([]byte, 1)
	oob := make([]byte, syscall.CmsgSpace(4))
	_, oobn, _, _, err := conn.ReadMsgUnix(buf, oob)
	if err != nil {
		return -1, err
	}
	msgs, err := syscall.ParseSocketControlMessage(oob[:oobn])
	if err != nil {
		return -1, err
	}
	for _, m := range msgs {
		fds, err := syscall.ParseUnixRights(&m)
		if err == nil && len(fds) == 1 {
			syscall.CloseOnExec(fds[0])
			return fds[0], nil
		}
	}
	return -1, fmt.Errorf("netrt: no fd in SCM_RIGHTS message")
}
