package netrt

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bufpool"
)

// TestAbortedRunDrainsPool audits the abort cascade for pooled-buffer
// leaks, once per transport: a two-rank mesh with an endless eager
// chain in flight loses rank 1 to Die() (the in-process kill -9), both
// runs unwind with errors, and once every connection goroutine has
// drained, the pool's ledger over the test must balance — every Get
// matched by a Put or a Dropped. Under -race the pool's debug tracking
// is on, so a leak also shows up as a named outstanding buffer.
//
// The shm variant is the satellite assertion for the ring transport:
// frames ride the shared rings (a producer that Puts its buffer the
// moment the ring accepted the copy) instead of the TCP outbox, and an
// aborted run must leave the ledger just as balanced.
//
// The deliver handler releases the pooled wire buffer on the reader
// goroutine, before enqueueing follow-on work: buffer ownership then
// never crosses into the scheduler, so the audit isolates the transport
// paths (writer outbox drain, reader dispatch-refused Puts, goodbye
// frames on dead connections) that the abort cascade exercises.
func TestAbortedRunDrainsPool(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shmOff bool
	}{{"shm", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.shmOff && !shmSupported {
				t.Skip("shm transport unsupported on this platform")
			}
			testAbortedRunDrainsPool(t, Config{ShmOff: tc.shmOff})
		})
	}
}

func testAbortedRunDrainsPool(t *testing.T, base Config) {
	before := bufpool.Default.Stats()

	nodes, err := StartLocalConfig(2, base)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	rts := make([]*Runtime, 2)
	for i, n := range nodes {
		rt, err := n.NewRuntime(4)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}

	payload := bytes.Repeat([]byte{0x7E}, 1024)
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			env := e
			bufpool.Put(pooled)
			rt.Enqueue(env.DstPE, func() {
				if env.Tag > 0 {
					rt.SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: env.DstPE,
						DstPE: env.SrcPE, Tag: env.Tag - 1, Data: payload})
				}
			})
		})
	}
	// A chain far too long to finish before the kill lands.
	rts[0].Enqueue(0, func() {
		rts[0].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 0, DstPE: 2,
			Tag: 1 << 30, Data: payload})
	})

	go func() {
		time.Sleep(50 * time.Millisecond)
		nodes[1].Die()
	}()

	done := make(chan struct{})
	go func() {
		runAll(rts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runs hung after the kill")
	}
	for i, rt := range rts {
		if len(rt.Errors()) == 0 {
			t.Errorf("rank %d survived the kill without an error", i)
		}
	}

	// Close tears down the survivors' connection goroutines; the writer
	// outbox drains and readers release asynchronously, so poll for the
	// ledger to settle.
	for _, n := range nodes {
		n.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := bufpool.Default.Stats()
		gets := s.Gets - before.Gets
		puts := s.Puts - before.Puts
		dropped := s.Dropped - before.Dropped
		if gets == puts+dropped {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool unbalanced after abort: gets=%d puts=%d dropped=%d (leak of %d)",
				gets, puts, dropped, gets-puts-dropped)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
