package netrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufpool"
)

// lazyExchange runs one quiesced round where the PE hosted on rank src
// sends a short tag chain to the PE on rank dst (one PE per rank), so
// the src-dst mesh edge must exist — or open — for the round to finish.
func lazyExchange(t *testing.T, nodes []*Node, src, dst int) {
	t.Helper()
	world := len(nodes)
	rts := make([]*Runtime, world)
	for i, n := range nodes {
		rt, err := n.NewRuntime(world)
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
		rts[i] = rt
	}
	var delivered atomic.Int64
	for i := range rts {
		rt := rts[i]
		rt.SetDeliver(func(e Env, pooled []byte) {
			env := e
			bufpool.Put(pooled)
			rt.Enqueue(env.DstPE, func() {
				delivered.Add(1)
				if env.Tag > 0 {
					rt.SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: env.DstPE,
						DstPE: env.SrcPE, Tag: env.Tag - 1})
				}
			})
		})
	}
	rts[src].Enqueue(src, func() {
		rts[src].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: src, DstPE: dst, Tag: 3})
	})
	runAll(rts)
	for i, rt := range rts {
		if errs := rt.Errors(); len(errs) > 0 {
			t.Fatalf("rank %d errors: %v", i, errs)
		}
	}
	if got := delivered.Load(); got != 4 {
		t.Fatalf("delivered %d hops between ranks %d and %d, want 4", got, src, dst)
	}
}

// totalConns sums sockets opened across the world (each edge counts
// twice, once per endpoint).
func totalConns(nodes []*Node) int64 {
	var sum int64
	for _, n := range nodes {
		sum += n.ConnsOpened()
	}
	return sum
}

// TestLazyFirstContact walks the whole lazy-dialing protocol on a
// six-rank world. Bootstrap must open only the coordinator star; a
// lower-rank sender must open its missing edge by dialing directly; a
// HIGHER-rank sender must get its edge via the FDialReq relay through
// rank 0 (the lower rank dials back, keeping the shm offer/accept roles
// fixed); and every fresh edge carries the round's traffic correctly.
func TestLazyFirstContact(t *testing.T) {
	const world = 6
	nodes := startWorld(t, world)

	// Bootstrap is the star: rank 0 holds one accepted conn per worker,
	// each worker holds exactly its dial to rank 0, no worker-worker
	// edges anywhere.
	star := int64(2 * (world - 1))
	if got := totalConns(nodes); got != star {
		t.Fatalf("bootstrap opened %d sockets, want the star's %d", got, star)
	}
	for r := 1; r < world; r++ {
		s := nodes[r].Stats()
		if s.ConnsDialed != 1 || s.ConnsAccepted != 0 {
			t.Fatalf("rank %d after bootstrap: dialed=%d accepted=%d, want 1/0", r, s.ConnsDialed, s.ConnsAccepted)
		}
	}

	// Lower rank sends first: rank 3 needs rank 5, dials it directly.
	lazyExchange(t, nodes, 3, 5)
	if d := nodes[3].Stats().ConnsDialed; d != 2 {
		t.Errorf("rank 3 dialed %d conns after contacting rank 5, want 2 (star + direct dial)", d)
	}
	if a := nodes[5].Stats().ConnsAccepted; a != 1 {
		t.Errorf("rank 5 accepted %d conns, want 1 (rank 3's first contact)", a)
	}
	if got := totalConns(nodes); got != star+2 {
		t.Errorf("after one first contact: %d sockets, want %d", got, star+2)
	}
	if shmSupported && shmLinkOf(nodes, 3, 5) == nil {
		t.Error("first contact between co-located ranks negotiated no shm link")
	}

	// Higher rank sends first: rank 4 needs rank 2, cannot dial (the
	// lower rank owns the dialer role), so it relays an FDialReq through
	// rank 0 and rank 2 dials back.
	lazyExchange(t, nodes, 4, 2)
	if r := nodes[4].Stats().DialReqs; r != 1 {
		t.Errorf("rank 4 originated %d dial requests, want 1", r)
	}
	if d := nodes[2].Stats().ConnsDialed; d != 2 {
		t.Errorf("rank 2 dialed %d conns after the relay, want 2 (star + dial-back)", d)
	}
	if a := nodes[4].Stats().ConnsAccepted; a != 1 {
		t.Errorf("rank 4 accepted %d conns, want 1 (rank 2's dial-back)", a)
	}
	if got := totalConns(nodes); got != star+4 {
		t.Errorf("after both first contacts: %d sockets, want %d", got, star+4)
	}

	// The edges are persistent: reusing both opens nothing new.
	lazyExchange(t, nodes, 5, 3)
	lazyExchange(t, nodes, 2, 4)
	if got := totalConns(nodes); got != star+4 {
		t.Errorf("reusing warm edges opened sockets: %d, want %d", got, star+4)
	}
}

// TestLazyOffOpensFullMesh pins the opt-out: -net.lazy=false restores
// the eager bootstrap, every edge up front.
func TestLazyOffOpensFullMesh(t *testing.T) {
	const world = 5
	nodes := startWorldConfig(t, world, Config{LazyOff: true})
	if got, want := totalConns(nodes), int64(world*(world-1)); got != want {
		t.Fatalf("eager bootstrap opened %d sockets, want the full mesh's %d", got, want)
	}
	lazyExchange(t, nodes, 4, 1)
	if got, want := totalConns(nodes), int64(world*(world-1)); got != want {
		t.Fatalf("traffic on the eager mesh opened %d sockets, want %d unchanged", got, want)
	}
}

// TestDialReqGlare drives both endpoints of one missing edge
// simultaneously from opposite sides — the lower rank dialing directly
// while the higher rank's FDialReq is in flight — and requires exactly
// one surviving connection carrying both ranks' traffic. The dialer-is-
// always-the-lower-rank convention makes true socket glare impossible;
// this pins the slot bookkeeping (dialing flag, stash flush, duplicate
// suppression in installLazy) under the race detector.
func TestDialReqGlare(t *testing.T) {
	const world, src, dst = 4, 1, 3
	for i := 0; i < 5; i++ {
		nodes := startWorld(t, world)
		rts := make([]*Runtime, world)
		for r, n := range nodes {
			rt, err := n.NewRuntime(world)
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
			rts[r] = rt
		}
		var delivered atomic.Int64
		for r := range rts {
			rt := rts[r]
			rt.SetDeliver(func(e Env, pooled []byte) {
				env := e
				bufpool.Put(pooled)
				rt.Enqueue(env.DstPE, func() { delivered.Add(1) })
			})
		}
		// Both ends fire at once: 1->3 dials, 3->1 stashes and relays.
		rts[src].Enqueue(src, func() {
			rts[src].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: src, DstPE: dst})
		})
		rts[dst].Enqueue(dst, func() {
			rts[dst].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: dst, DstPE: src})
		})
		runAll(rts)
		for r, rt := range rts {
			if errs := rt.Errors(); len(errs) > 0 {
				t.Fatalf("iter %d rank %d errors: %v", i, r, errs)
			}
		}
		if got := delivered.Load(); got != 2 {
			t.Fatalf("iter %d: delivered %d messages across the glared edge, want 2", i, got)
		}
		// Exactly one edge may exist between them, counted once per
		// endpoint: rank 1's direct dial wins (it owns the dialer role),
		// and the in-flight FDialReq must not conjure a duplicate.
		opened := nodes[src].Stats().ConnsDialed - 1 + nodes[dst].Stats().ConnsAccepted
		if opened != 2 {
			t.Fatalf("iter %d: %d socket endpoints on the %d-%d edge, want 2 (one edge)", i, opened, src, dst)
		}
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestLazyDeadPeerFailsFast pins the failure path: a first-contact dial
// toward a rank that stopped listening must surface as a typed dial
// NetError aborting the run — everywhere, via the Bye cascade — instead
// of hanging the world in termination detection. Rank 3 stays alive (so
// its runtime still reports into the probe rounds) but its listener is
// gone, exactly the window where a rank's death has not yet reached the
// star.
func TestLazyDeadPeerFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("rides out the full ~10s dial-retry backoff")
	}
	const world = 4
	nodes := startWorld(t, world)
	rts := make([]*Runtime, world)
	for r, n := range nodes {
		rt, err := n.NewRuntime(world)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		rts[r] = rt
		rt.SetDeliver(func(e Env, pooled []byte) { bufpool.Put(pooled) })
	}
	nodes[3].ln.Close()
	rts[1].Enqueue(1, func() {
		rts[1].SendMsg(&Env{Kind: EnvPE, Array: -1, SrcPE: 1, DstPE: 3})
	})
	done := make(chan struct{})
	go func() {
		runAll(rts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("world hung after first contact with a dead listener")
	}
	errs := rts[1].Errors()
	if len(errs) == 0 {
		t.Fatal("rank 1's run finished cleanly despite the dead first-contact peer")
	}
	var ne *NetError
	if !errors.As(errs[0], &ne) || ne.Op != "dial" || ne.Peer != 3 {
		t.Fatalf("rank 1's error %v, want a dial NetError naming peer 3", errs[0])
	}
}
