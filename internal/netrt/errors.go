package netrt

import (
	"errors"
	"fmt"
)

// NetError is a typed network failure: a peer process died, a
// connection broke, or a keepalive window expired. It surfaces through
// Result.Errors of the application that was running when the failure
// hit, so a killed peer produces a diagnosable error instead of a hung
// quiescence.
type NetError struct {
	// Rank is the local rank that observed the failure.
	Rank int
	// Peer is the remote rank the failure concerns.
	Peer int
	// Op names the operation that failed: "dial", "read", "write",
	// "keepalive", "peer-abort", "bootstrap", "config".
	Op string
	// Err is the underlying cause.
	Err error
}

// ErrBadConfig is the sentinel under every configuration rejection:
// errors.Is(err, ErrBadConfig) distinguishes "you asked for an
// impossible world" from a world that failed to form.
var ErrBadConfig = errors.New("invalid netrt configuration")

// badConfig wraps a configuration defect as a typed, non-recoverable
// NetError (Peer -1 keeps it outside Recoverable's rank-death shape).
func badConfig(rank int, err error) error {
	return &NetError{Rank: rank, Peer: -1, Op: "config", Err: fmt.Errorf("%w: %v", ErrBadConfig, err)}
}

// Error formats the failure.
func (e *NetError) Error() string {
	return fmt.Sprintf("netrt: rank %d lost peer %d (%s): %v", e.Rank, e.Peer, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *NetError) Unwrap() error { return e.Err }

// Recoverable reports whether a run's failure set is a rank-death the
// recovery driver can handle: at least one error, every error a typed
// NetError concerning a concrete peer (Peer >= 0), and none of them a
// bootstrap failure — a world that never formed has nothing to rejoin.
func Recoverable(errs []error) bool {
	if len(errs) == 0 {
		return false
	}
	for _, err := range errs {
		var ne *NetError
		if !errors.As(err, &ne) {
			return false
		}
		if ne.Peer < 0 || ne.Op == "bootstrap" {
			return false
		}
	}
	return true
}
