package netrt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Shared-memory transport defaults and handshake tuning.
const (
	// defaultShmRingBytes sizes each direction's eager-frame ring. Frames
	// larger than the ring stream through in chunks, so this bounds
	// batching, not frame size.
	defaultShmRingBytes = 1 << 20
	// defaultShmArenaBytes sizes each direction's registered-buffer
	// arena — where CkDirect receive buffers are placed so a put becomes
	// a cross-process memcpy. Handles that do not fit fall back to ring
	// frames, which still avoid the kernel.
	defaultShmArenaBytes = 4 << 20
	// maxShmBytes bounds what an offer may ask this process to map.
	maxShmBytes = 1 << 30
	// shmHandshakeTimeout bounds each step of the per-edge bootstrap
	// exchange; the edges handshake serially in rank order, so a wedged
	// peer surfaces as a typed bootstrap error instead of a hang.
	shmHandshakeTimeout = 10 * time.Second
)

// maxShmPendingBytes bounds the combiner's staging buffer: a producer
// finding it full spins (briefly) for the flusher instead of growing it
// without limit.
const maxShmPendingBytes = 1 << 20

// shmLink is one live shared segment between this process and a peer:
// an outbound ring (frames we produce), an inbound ring (frames the
// peer produces, drained by this peer's ring-reader goroutine), and the
// two put arenas.
//
// Producer-side safety is a two-part discipline. mu guards the link's
// state transitions and the combiner below, but the expensive touches
// of the mapping — ring writes and arena memcpys — run OUTSIDE mu,
// covered by the prod WaitGroup: a producer registers under mu (where
// dead is checked), works on the mapping lock-free, then signals done.
// Teardown sets dead under mu and waits for prod to drain before
// unmapping, so no producer can dereference freed pages, yet two 64 KiB
// put deposits on one edge overlap instead of serializing behind the
// lock.
//
// The ring itself is SPSC, so concurrent frame producers still need an
// ordering point: the writing/pending pair is a combining lock. The
// first producer takes the write token and owns the ring; contenders
// append their encoded frames to pending (one copy — frames are
// self-delimiting, so the byte stream concatenates) and return
// immediately, and the token holder flushes the accumulated batch in
// single ring writes after its own. Consecutive FPut doorbells under
// fan-in thus coalesce into one ring pass — the doorbell aggregation
// the scale work wants — and the count lands in coalesced.
type shmLink struct {
	seg      []byte // the whole mapping (nil after teardown)
	out, in  *shmRing
	outArena []byte // we deposit puts here; peer's registered recv buffers
	inArena  []byte // peer deposits here; our registered recv buffers

	mu      sync.Mutex
	dead    bool
	prod    sync.WaitGroup
	writing bool
	pending []byte

	// coalesced, when set by the owning node, counts frames that were
	// staged behind an in-flight ring write instead of paying their own.
	coalesced *atomic.Int64

	// readerDone closes when the ring-reader goroutine exits (or is
	// known never to start); teardown waits on it so the consumer side
	// cannot touch the mapping either.
	readerDone chan struct{}
	readerOnce sync.Once
}

// enter registers a producer touch of the mapping; false means the link
// is dead. Every true return must be paired with l.prod.Done().
func (l *shmLink) enter() bool {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return false
	}
	l.prod.Add(1)
	l.mu.Unlock()
	return true
}

// markReaderDone records that the ring reader has exited or will never
// start; safe to call from multiple teardown paths.
func (l *shmLink) markReaderDone() {
	l.readerOnce.Do(func() { close(l.readerDone) })
}

// shmSegBytes is the total segment size for the given ring and arena
// budgets: two rings (header + data each) and two arenas.
func shmSegBytes(ringBytes, arenaBytes int) int {
	return 2*(shmRingHdrBytes+ringBytes) + 2*arenaBytes
}

// newShmLink overlays the link structure on a mapped segment. lower
// reports whether this process is the lower rank of the edge: the
// layout is fixed — [ring lo→hi][ring hi→lo][arena lo deposits][arena
// hi deposits] — and each side picks its directions accordingly, so
// both mappings agree without any further negotiation.
func newShmLink(seg []byte, ringBytes, arenaBytes int, lower bool) (*shmLink, error) {
	ringLen := shmRingHdrBytes + ringBytes
	loHi, err := newShmRing(seg[0:ringLen])
	if err != nil {
		return nil, err
	}
	hiLo, err := newShmRing(seg[ringLen : 2*ringLen])
	if err != nil {
		return nil, err
	}
	loArena := seg[2*ringLen : 2*ringLen+arenaBytes]
	hiArena := seg[2*ringLen+arenaBytes : 2*ringLen+2*arenaBytes]
	l := &shmLink{seg: seg, readerDone: make(chan struct{})}
	if lower {
		l.out, l.in = loHi, hiLo
		l.outArena, l.inArena = loArena, hiArena
	} else {
		l.out, l.in = hiLo, loHi
		l.outArena, l.inArena = hiArena, loArena
	}
	return l, nil
}

// writeFrame publishes one encoded frame to the peer through the ring.
// The bytes are fully copied (into the ring or the combiner's staging
// buffer) before it returns, so the caller reclaims its buffer
// immediately. False means the link (or the peer) is down and the frame
// was dropped — the same contract as a send on a dead TCP connection. A
// staged frame reports true at staging time; it can still die with the
// link if the flusher finds it dead, which is the same frame-loss class
// as every other teardown path (only aborting runs close links).
func (l *shmLink) writeFrame(b []byte, down <-chan struct{}) bool {
	if !l.enter() {
		return false
	}
	defer l.prod.Done()
	spins := 0
	l.mu.Lock()
	for {
		if l.dead {
			l.mu.Unlock()
			return false
		}
		if !l.writing {
			break
		}
		if len(l.pending) <= maxShmPendingBytes {
			l.pending = append(l.pending, b...)
			if l.coalesced != nil {
				l.coalesced.Add(1)
			}
			l.mu.Unlock()
			return true
		}
		// Staging buffer full: wait for the flusher to drain it (or for
		// the token to free up), with the ring's own backoff curve.
		l.mu.Unlock()
		select {
		case <-down:
			return false
		default:
		}
		spins = spinStep(spins)
		l.mu.Lock()
	}
	l.writing = true
	l.mu.Unlock()
	ok := l.out.write(b, down)
	l.mu.Lock()
	for ok && !l.dead && len(l.pending) > 0 {
		batch := l.pending
		l.pending = nil
		l.mu.Unlock()
		ok = l.out.write(batch, down)
		l.mu.Lock()
	}
	l.pending = nil
	l.writing = false
	l.mu.Unlock()
	return ok
}

// teardown unmaps this process's view of the segment. It must only run
// after the link's consumer is gone: the caller waits for the
// ring-reader goroutine (readerDone). Producers are fenced by the
// dead flag plus the prod WaitGroup — once dead is visible no new
// producer enters, the closed ring flags kick the in-flight ones out of
// their copy loops, and the drain wait below keeps the unmap from
// racing a producer mid-memcpy. Safe to call more than once (later
// callers may return while the first is still draining; the mapping
// only falls once).
func (l *shmLink) teardown() {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		return
	}
	l.dead = true
	// Raise the closed flags in the shared header before dropping the
	// mapping: the peer's writer and reader observe them on their next
	// poll and exit immediately, instead of waiting for the TCP-side
	// EOF to close their down latch.
	l.out.close()
	l.in.close()
	seg := l.seg
	l.seg, l.outArena, l.inArena = nil, nil, nil
	l.mu.Unlock()
	l.prod.Wait()
	unmapShm(seg)
}

// shmServer is this node's fd-passing endpoint: an abstract-namespace
// unix listener (auto-reclaimed by the kernel when the process dies, so
// a kill -9 leaves no socket litter) serving token→memfd lookups during
// the per-edge handshakes. One server outlives all mesh epochs; tokens
// are single-use and unregistered as soon as the edge's handshake ends.
type shmServer struct {
	name string
	ln   *net.UnixListener

	mu      sync.Mutex
	pending map[string]int // token -> fd
}

func (s *shmServer) add(token string, fd int) {
	s.mu.Lock()
	s.pending[token] = fd
	s.mu.Unlock()
}

func (s *shmServer) remove(token string) {
	s.mu.Lock()
	delete(s.pending, token)
	s.mu.Unlock()
}

func (s *shmServer) lookup(token string) (int, bool) {
	s.mu.Lock()
	fd, ok := s.pending[token]
	s.mu.Unlock()
	return fd, ok
}

func (s *shmServer) close() {
	if s != nil && s.ln != nil {
		s.ln.Close()
	}
}

// serveLoop accepts fd requests until the listener closes.
func (s *shmServer) serveLoop() {
	for {
		c, err := s.ln.AcceptUnix()
		if err != nil {
			return
		}
		go s.serveOne(c)
	}
}

// serveOne answers one token lookup: read the token line, pass the
// registered fd via SCM_RIGHTS. The requester is the co-located peer
// mid-handshake, so the deadline only guards against a wedged client.
func (s *shmServer) serveOne(c *net.UnixConn) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(shmHandshakeTimeout))
	tok, err := bufio.NewReaderSize(c, 256).ReadString('\n')
	if err != nil {
		return
	}
	fd, ok := s.lookup(strings.TrimSuffix(tok, "\n"))
	if !ok {
		return
	}
	sendFd(c, fd)
}

// shmServerLazy returns the node's fd server, creating it on first use.
func (n *Node) shmServerLazy() (*shmServer, error) {
	n.shmMu.Lock()
	defer n.shmMu.Unlock()
	if n.shmSrv != nil {
		return n.shmSrv, nil
	}
	name := fmt.Sprintf("@ckshm-%d-%d-%x", os.Getpid(), n.rank, n.rand64())
	ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: name, Net: "unix"})
	if err != nil {
		return nil, err
	}
	s := &shmServer{name: name, ln: ln, pending: make(map[string]int)}
	go s.serveLoop()
	n.shmSrv = s
	return s, nil
}

// shmSizes resolves the configured ring and arena budgets, rounding the
// ring to a power of two (the ring masks positions) and both to page
// multiples (so every ring header in the shared layout stays aligned).
func (n *Node) shmSizes() (ringBytes, arenaBytes int) {
	ringBytes = n.cfg.ShmRingBytes
	if ringBytes <= 0 {
		ringBytes = defaultShmRingBytes
	}
	p := 4096
	for p < ringBytes {
		p <<= 1
	}
	ringBytes = p
	arenaBytes = n.cfg.ShmArenaBytes
	if arenaBytes <= 0 {
		arenaBytes = defaultShmArenaBytes
	}
	arenaBytes = (arenaBytes + 4095) &^ 4095
	return ringBytes, arenaBytes
}

// shmEnabled reports whether this node may offer or accept segments.
func (n *Node) shmEnabled() bool { return shmSupported && !n.cfg.ShmOff }

// setupShm runs the per-edge shared-memory handshake across the whole
// freshly built mesh, synchronously, before any connection goroutine
// starts — the frames ride the raw bootstrap conns. Edges are processed
// in increasing peer-rank order and the LOWER rank of each edge offers
// while the higher accepts; a blocked node is always waiting on a peer
// busy with a strictly lower-ranked edge, so the wait graph is acyclic
// and the exchange cannot deadlock.
//
// The exchange always happens, even when shm is disabled or
// unsupported: the offer is then empty and the answer a decline, which
// keeps a world with mixed -net.shm settings in protocol instead of
// hanging half the ranks.
func (n *Node) setupShm(peers []*peerConn) error {
	for r := 0; r < len(peers); r++ {
		p := peers[r]
		if p == nil || r == n.rank || p.started {
			// A started peer is a lazily installed first-contact edge
			// that raced a rejoin tail: its handshake already happened
			// on the raw conn at accept time.
			continue
		}
		var err error
		if n.rank < r {
			err = n.shmOffer(p)
		} else {
			err = n.shmAccept(p)
		}
		if err != nil {
			return fmt.Errorf("shm handshake with rank %d: %w", r, err)
		}
	}
	return nil
}

// shmOffer runs the lower rank's side of one edge: create the segment,
// park its fd with the node's fd server under a one-shot token, send
// the FShmOffer (payload: fd-server address, token, host identity;
// A/B: ring and arena bytes), and wait for the peer's FShmAck. The fd
// closes as soon as the ack arrives — accepted or not, by then the peer
// has either mapped the segment or walked away, and the mapping (not
// the fd) is what keeps the memory alive. That discipline is what the
// /proc/self/fd leak assertion in the tests pins down.
func (n *Node) shmOffer(p *peerConn) error {
	offer := &Frame{Type: FShmOffer}
	ringBytes, arenaBytes := n.shmSizes()
	fd := -1
	var seg []byte
	var token string
	var srv *shmServer
	if n.shmEnabled() {
		if s, err := n.shmServerLazy(); err == nil {
			if f, err := createShmFd(shmSegBytes(ringBytes, arenaBytes)); err == nil {
				if m, err := mapShmFd(f, shmSegBytes(ringBytes, arenaBytes)); err == nil {
					fd, seg, srv = f, m, s
					token = strconv.FormatUint(n.rand64(), 16)
					srv.add(token, fd)
					offer.A, offer.B = int64(ringBytes), int64(arenaBytes)
					offer.Payload = []byte(srv.name + "\n" + token + "\n" + hostID())
				} else {
					closeFd(f)
				}
			}
		}
	}
	release := func() {
		if srv != nil {
			srv.remove(token)
		}
		closeFd(fd)
	}
	p.conn.SetDeadline(time.Now().Add(shmHandshakeTimeout))
	defer p.conn.SetDeadline(time.Time{})
	if err := writeFrame(p.conn, offer); err != nil {
		release()
		unmapShm(seg)
		return err
	}
	ack, err := readFrame(p.br)
	release()
	if err != nil || ack.Type != FShmAck {
		unmapShm(seg)
		if err == nil {
			err = fmt.Errorf("expected SHMACK, got frame type %d", ack.Type)
		}
		return err
	}
	if ack.A != 1 || seg == nil {
		unmapShm(seg)
		return nil // declined: the edge stays on TCP
	}
	link, err := newShmLink(seg, ringBytes, arenaBytes, true)
	if err != nil {
		unmapShm(seg)
		return nil
	}
	link.coalesced = &n.shmCoalesced
	p.shm.Store(link)
	return nil
}

// shmAccept runs the higher rank's side: read the offer, and — when shm
// is enabled here, the peer proved co-location, and the sizes are sane —
// dial the peer's fd server, redeem the token for the memfd, map it,
// and ack acceptance. Every failure path acks a decline instead, so
// both sides always agree on whether the link exists.
func (n *Node) shmAccept(p *peerConn) error {
	p.conn.SetDeadline(time.Now().Add(shmHandshakeTimeout))
	defer p.conn.SetDeadline(time.Time{})
	f, err := readFrame(p.br)
	if err != nil {
		return err
	}
	if f.Type != FShmOffer {
		return fmt.Errorf("expected SHMOFFER, got frame type %d", f.Type)
	}
	ringBytes, arenaBytes := int(f.A), int(f.B)
	var link *shmLink
	if n.shmEnabled() && len(f.Payload) > 0 &&
		ringBytes > 0 && arenaBytes > 0 && shmSegBytes(ringBytes, arenaBytes) <= maxShmBytes {
		if seg := n.shmRedeem(string(f.Payload), shmSegBytes(ringBytes, arenaBytes)); seg != nil {
			if l, err := newShmLink(seg, ringBytes, arenaBytes, false); err == nil {
				l.coalesced = &n.shmCoalesced
				link = l
			} else {
				unmapShm(seg)
			}
		}
	}
	ack := &Frame{Type: FShmAck}
	if link != nil {
		ack.A = 1
	}
	if err := writeFrame(p.conn, ack); err != nil {
		if link != nil {
			link.teardownNoReader()
		}
		return err
	}
	if link != nil {
		p.shm.Store(link)
	}
	return nil
}

// teardownNoReader is teardown for a link whose ring reader never
// started (handshake failures only).
func (l *shmLink) teardownNoReader() {
	l.markReaderDone()
	l.teardown()
}

// shmRedeem turns an offer payload into a mapped segment: verify the
// peer is on this machine, dial its abstract-namespace fd server, trade
// the token for the memfd over SCM_RIGHTS, check the file is as big as
// promised, map it, and close the fd (the mapping holds the memory).
// Any failure returns nil and the edge stays on TCP.
func (n *Node) shmRedeem(payload string, total int) []byte {
	parts := strings.SplitN(payload, "\n", 3)
	if len(parts) != 3 || parts[2] != hostID() || hostID() == "" {
		return nil
	}
	d := net.Dialer{Timeout: shmHandshakeTimeout}
	c, err := d.Dial("unix", parts[0])
	if err != nil {
		return nil
	}
	uc, ok := c.(*net.UnixConn)
	if !ok {
		c.Close()
		return nil
	}
	defer uc.Close()
	uc.SetDeadline(time.Now().Add(shmHandshakeTimeout))
	if _, err := uc.Write([]byte(parts[1] + "\n")); err != nil {
		return nil
	}
	fd, err := recvFd(uc)
	if err != nil {
		return nil
	}
	defer closeFd(fd)
	if sz, err := fdSize(fd); err != nil || sz < int64(total) {
		return nil
	}
	seg, err := mapShmFd(fd, total)
	if err != nil {
		return nil
	}
	return seg
}

// teardownShmLinks unmaps every link in the given connection table. It
// runs only when the mesh (epoch) those connections belong to is
// finished — Close after the final run, or Rejoin after the aborted run
// unwound — and waits (bounded) for each link's ring reader to exit
// before touching the mapping. Die deliberately does NOT call this: an
// in-process "kill -9" leaves application goroutines mid-flight that
// may still be polling sentinels inside the arena, and a few MiB of
// mapping held until process exit is exactly what a real killed process
// would pin.
func teardownShmLinks(peers []*peerConn) {
	deadline := time.After(closeFlushGrace)
	for _, p := range peers {
		if p == nil {
			continue
		}
		l := p.shm.Load()
		if l == nil {
			continue
		}
		if !p.started {
			l.markReaderDone()
		}
		select {
		case <-l.readerDone:
		case <-deadline:
			continue // reader wedged: leak the mapping rather than fault it
		}
		l.teardown()
	}
}

// directPut attempts the one-sided fast path for an FPut: when the peer
// registered this handle's receive buffer (FShmReg) for the current run
// and the link is up, the payload body is memcpy'd straight into the
// shared arena and a 48-byte doorbell frame — carrying the sentinel
// word in C — rides the ring. Zero kernel crossings, zero pooled
// buffers. False means the caller must fall back to the ordinary frame
// path (which itself rides the ring when the link is up).
func (p *peerConn) directPut(run, id int64, payload []byte) bool {
	l := p.shm.Load()
	if l == nil || len(payload) < 8 {
		return false
	}
	p.regMu.Lock()
	reg, ok := p.regs[id]
	p.regMu.Unlock()
	if !ok || reg.run != run || reg.size != int64(len(payload)) {
		return false
	}
	last := binary.LittleEndian.Uint64(payload[len(payload)-8:])
	var hdr [frameHeaderLen + frameFixedBody]byte
	db := appendFrameHeader(hdr[:0], FPut, run, id, shmPutDoorbell, int64(last), 0, 0)
	l.mu.Lock()
	arena := l.outArena
	if l.dead || reg.off+reg.size > int64(len(arena)) {
		l.mu.Unlock()
		return false
	}
	l.prod.Add(1)
	l.mu.Unlock()
	defer l.prod.Done()
	// Deposit everything but the sentinel word; the word travels in the
	// doorbell and is release-stored by the receiver AFTER it takes a
	// work credit, so the poll loop cannot observe completion before the
	// credit exists (the same PutIssued-before-publish discipline the
	// streamed TCP path follows). The memcpy runs outside the link lock
	// — registrations are disjoint arena reservations made by the
	// receiver's bump allocator, so two large puts on one edge overlap;
	// only the doorbell pays the ring's ordering point, and the combiner
	// in writeFrame coalesces a doorbell burst into one flush. The
	// happens-before chain to the receiver is intact either way: memcpy
	// precedes the ring write (or the mu-ordered staging append that the
	// flusher's ring write follows), and the ring's release-store tail /
	// acquire-load head publishes both.
	copy(arena[reg.off:reg.off+reg.size-8], payload[:len(payload)-8])
	return l.writeFrame(db, p.down)
}

// shmPutDoorbell in an FPut's B field marks a doorbell: the payload is
// already in the receiver's registered buffer via the shared arena, and
// only the sentinel word (in C) still needs publishing.
const shmPutDoorbell = 1

// shmPutReg is one registered put target: where in the outbound arena
// this handle's receive buffer lives on the peer.
type shmPutReg struct {
	run, off, size int64
}

// noteShmReg records a peer's FShmReg registration. Registrations are
// per (handle, run): a new run's registration overwrites the old, and
// directPut checks the run before trusting one.
func (p *peerConn) noteShmReg(f Frame) {
	if f.C < 8 || f.B < 0 || f.B+f.C > int64(maxShmBytes) {
		return
	}
	p.regMu.Lock()
	if p.regs == nil {
		p.regs = make(map[int64]shmPutReg)
	}
	p.regs[f.A] = shmPutReg{run: f.Run, off: f.B, size: f.C}
	p.regMu.Unlock()
}

// dropReg forgets a put-buffer registration (the channel's receive
// endpoint migrated away from this edge); subsequent puts on the
// handle fall back to the framed path.
func (p *peerConn) dropReg(id int64) {
	p.regMu.Lock()
	delete(p.regs, id)
	p.regMu.Unlock()
}

// allocArena carves size bytes (64-aligned) for one of this process's
// registered receive buffers out of the arena the peer deposits into.
// The bump state resets when a new run generation first allocates:
// termination of the previous generation proved no put is still in
// flight, so the whole arena is reusable.
func (p *peerConn) allocArena(gen int64, size int) ([]byte, int64, bool) {
	l := p.shm.Load()
	if l == nil || size < 8 {
		return nil, 0, false
	}
	p.arenaMu.Lock()
	defer p.arenaMu.Unlock()
	if p.arenaGen != gen {
		p.arenaGen, p.arenaOff = gen, 0
	}
	off := (p.arenaOff + 63) &^ 63
	l.mu.Lock()
	arena := l.inArena
	l.mu.Unlock()
	if arena == nil || off+size > len(arena) {
		return nil, 0, false
	}
	p.arenaOff = off + size
	return arena[off : off+size : off+size], int64(off), true
}
