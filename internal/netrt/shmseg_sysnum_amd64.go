//go:build linux && amd64

package netrt

// memfd_create's syscall number is arch-specific and postdates the
// frozen syscall package's tables, so it is spelled out per arch.
const sysMemfdCreate = 319
