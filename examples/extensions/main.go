// extensions: tours the paper's §6 future-work features, all implemented
// in this reproduction:
//
//  1. strided puts        — land a column panel inside a row-major matrix
//  2. multicast channels  — one source buffer to many receivers
//  3. reduction channels  — N one-sided contributions combined at a target
//  4. the channel learner — observe message traffic, suggest channels
package main

import (
	"fmt"
	"log"

	"repro/pkg/ckdsim"
)

const oob = 0x7FF8_6006_6006_0001

func main() {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 4, ckdsim.Options{Checked: true})
	mgr, mach, rts := sys.CkDirect(), sys.Machine(), sys.RTS()

	// --- 1. Strided put: write a 2-column panel into a 4x8 matrix. ---
	const rows, cols = 4, 8
	matrix := mach.AllocRegion(1, rows*cols*8, false)
	layout := ckdsim.StridedLayout{
		Offset:   2 * 8,    // panel starts at column 2
		BlockLen: 2 * 8,    // 2 columns wide
		Stride:   cols * 8, // one matrix row apart
		Count:    rows,
	}
	sh, err := mgr.CreateStridedHandle(1, matrix, layout, oob, func(ctx *ckdsim.Ctx) {
		fmt.Printf("t=%v  strided panel landed inside the matrix (no receive copy)\n", ctx.Now())
	})
	check(err)
	panel := mach.AllocRegion(0, layout.TotalBytes(), false)
	for i := range panel.Bytes() {
		panel.Bytes()[i] = 0xAB
	}
	check(mgr.AssocLocal(sh.Handle, 0, panel))

	// --- 2. Multicast: one buffer to three receivers. ---
	src := mach.AllocRegion(0, 512, false)
	var members []ckdsim.MulticastMember
	for pe := 1; pe <= 3; pe++ {
		pe := pe
		members = append(members, ckdsim.MulticastMember{
			PE:  pe,
			Buf: mach.AllocRegion(pe, 512, false),
			Callback: func(ctx *ckdsim.Ctx) {
				fmt.Printf("t=%v  multicast member on PE %d received\n", ctx.Now(), pe)
			},
		})
	}
	mh, err := mgr.CreateMulticast(0, src, oob, members)
	check(err)

	// --- 3. Reduction channel: three producers, Sum, one target. ---
	rc, err := mgr.CreateReduceChannel(3, 3, 1, ckdsim.Sum, oob,
		func(ctx *ckdsim.Ctx, vals []float64) {
			fmt.Printf("t=%v  reduce channel combined: %v\n", ctx.Now(), vals[0])
		})
	check(err)
	contribs := make([]*ckdsim.Region, 3)
	for i := 0; i < 3; i++ {
		contribs[i] = mach.AllocRegion(i, 8, false)
		check(mgr.AssocLocal(rc.SlotHandle(i), i, contribs[i]))
	}

	// --- 4. Learner: watch a repeated message pattern. ---
	learner := sys.NewLearner()
	arr := rts.NewArray("traffic", ckdsim.BlockMap1D(4, 4))
	for i := 0; i < 4; i++ {
		arr.Insert(ckdsim.Idx1(i), nil)
	}
	ep := arr.EntryMethod("recv", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {})

	rts.StartAt(0, func(ctx *ckdsim.Ctx) {
		check(mgr.PutStrided(sh))
		check(mgr.MulticastPut(mh, func() {
			fmt.Printf("t=%v  multicast fully delivered (sender-side completion)\n", ctx.Now())
		}))
		for i := 0; i < 3; i++ {
			check(mgr.Contribute(rc, i, contribs[i], []float64{float64((i + 1) * 100)}))
		}
		// A stable iterative flow for the learner to find.
		for k := 0; k < 5; k++ {
			ctx.Send(arr, ckdsim.Idx1(3), ep, &ckdsim.Message{Size: 32768})
		}
	})
	sys.Run()

	fmt.Println()
	for _, s := range learner.Advise() {
		fmt.Printf("learner: flow PE%d -> PE%d (%s, %d B x %d msgs) is channel-worthy: save %v/msg\n",
			s.SrcPE, s.DstPE, s.Array, s.Size, s.Messages, s.SavingPerMsg)
	}
	if errs := sys.Errors(); len(errs) > 0 {
		log.Fatalf("contract violations: %v", errs)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
