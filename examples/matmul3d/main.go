// matmul3d: runs the paper's §4.2 experiment at a small, verifiable
// scale — a 3-D-decomposed parallel matrix multiplication — with both
// transports, checks that the products are exact, and reports the
// CkDirect speedup. This example drives the full application package
// rather than re-implementing it; see examples/halo3d for a from-scratch
// public-API program.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/matmul"
	"repro/internal/netmodel"
)

func main() {
	cfg := matmul.Config{
		Platform: netmodel.AbeIB,
		PEs:      8,
		N:        128,
		Iters:    3,
		Warmup:   1,
		Validate: true,
	}

	cfg.Mode = matmul.Msg
	msg := matmul.Run(cfg)
	cfg.Mode = matmul.Ckd
	ckd := matmul.Run(cfg)

	fmt.Printf("3-D matmul, %dx%d matrices on %d PEs (chare grid %dx%dx%d)\n",
		cfg.N, cfg.N, cfg.PEs, msg.Grid[0], msg.Grid[1], msg.Grid[2])
	fmt.Printf("  messages : %v per multiply (max error %.2e)\n", msg.IterTime, msg.MaxError)
	fmt.Printf("  ckdirect : %v per multiply (max error %.2e)\n", ckd.IterTime, ckd.MaxError)
	if msg.MaxError > 1e-9 || ckd.MaxError > 1e-9 {
		log.Fatal("product verification failed")
	}
	pct := (1 - float64(ckd.IterTime)/float64(msg.IterTime)) * 100
	fmt.Printf("  improvement: %.1f%% — the receive-side copies and scheduler dispatches\n", pct)
	fmt.Println("  that CkDirect eliminates grow with the processor count (paper Fig. 3)")
}
