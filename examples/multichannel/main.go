// multichannel: demonstrates two CkDirect features from §2 of the paper:
//
//  1. One send buffer associated with several handles — the same data is
//     fanned out to multiple receivers without extra copies.
//  2. The split CkDirect_ReadyMark / CkDirect_ReadyPollQ calls — the
//     receiver marks a channel as consumed as soon as it is done with
//     the buffer, but only resumes paying polling cost when the phase
//     that uses the channel begins (the fix for OpenAtom's polling
//     overhead in §5.2).
package main

import (
	"fmt"
	"log"

	"repro/pkg/ckdsim"
)

const oob = 0x7FF8_0F0F_0F0F_0001

func main() {
	const receivers = 3
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), receivers+1, ckdsim.Options{Checked: true})
	mgr, mach, rts := sys.CkDirect(), sys.Machine(), sys.RTS()

	// One source buffer on PE 0 ...
	src := mach.AllocRegion(0, 1024, false)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i * 3)
	}

	// ... fanned out to three receivers over three channels.
	var handles []*ckdsim.Handle
	arrived := 0
	for r := 1; r <= receivers; r++ {
		recv := mach.AllocRegion(r, 1024, false)
		r := r
		h, err := mgr.CreateHandle(r, recv, oob, func(ctx *ckdsim.Ctx) {
			arrived++
			fmt.Printf("t=%v  receiver on PE %d has the broadcast (polled %d handles there)\n",
				ctx.Now(), r, mgr.PolledOn(r))
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.AssocLocal(h, 0, src); err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}

	// Phase 1: fan the data out.
	rts.StartAt(0, func(ctx *ckdsim.Ctx) {
		for _, h := range handles {
			if err := mgr.Put(h); err != nil {
				log.Fatal(err)
			}
		}
	})
	sys.Run()
	fmt.Printf("fan-out complete: %d receivers from one buffer (%d puts, 0 sender-side copies)\n\n",
		arrived, len(handles))

	// Phase 2: the windowing pattern. Each receiver is done with its
	// buffer -> ReadyMark (cheap, removes nothing from memory, performs
	// no synchronization). The handles stay OUT of the polling queues
	// through an unrelated message-heavy phase, so that phase pays no
	// polling tax; ReadyPollQ re-arms them just before the next fan-out.
	for _, h := range handles {
		mgr.ReadyMark(h)
	}
	for r := 1; r <= receivers; r++ {
		fmt.Printf("PE %d polls %d handles during the unrelated phase (marked, not queued)\n",
			r, mgr.PolledOn(r))
	}
	// The sender may even put *before* the receivers resume polling —
	// the data lands and is detected the moment ReadyPollQ runs.
	sys.Engine().Resume()
	rts.StartAt(0, func(ctx *ckdsim.Ctx) {
		for _, h := range handles {
			if err := mgr.Put(h); err != nil {
				log.Fatal(err)
			}
		}
	})
	sys.Run()
	fmt.Printf("\nputs landed while unpolled: arrivals still %d (no polling, no detection)\n", arrived)

	for _, h := range handles {
		mgr.ReadyPollQ(h)
	}
	end := sys.Run()
	fmt.Printf("after ReadyPollQ at the phase boundary: arrivals %d, t=%v\n", arrived, end)
	if errs := sys.Errors(); len(errs) > 0 {
		log.Fatalf("contract violations: %v", errs)
	}
}
