// Quickstart: set up one CkDirect channel between two chares and send
// data through it, following the exact call sequence of the paper's
// Figure 1:
//
//	receiver: CkDirect_createHandle  (buffer, out-of-band pattern, callback)
//	    ... handle travels to the sender ...
//	sender:   CkDirect_assocLocal    (bind the local source buffer)
//	sender:   CkDirect_put           (one-sided write, no synchronization)
//	receiver: callback fires when the data is in memory
//	receiver: CkDirect_ready         (re-arm for the next iteration)
package main

import (
	"fmt"
	"log"

	"repro/pkg/ckdsim"
)

func main() {
	// A 4-PE machine modelled after NCSA Abe's Infiniband nodes.
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 4, ckdsim.Options{Checked: true})
	mgr := sys.CkDirect()
	mach := sys.Machine()

	// The out-of-band pattern: a value the application guarantees will
	// never appear as the last double word of real data (here, a NaN
	// payload in an array of finite doubles).
	const oob = 0x7FF8_0000_C0DE_0001

	// Receiver side (PE 1): the destination buffer and the handle.
	recvBuf := mach.AllocRegion(1, 256, false)
	iterations := 0
	var handle *ckdsim.Handle
	var err error
	handle, err = mgr.CreateHandle(1, recvBuf, oob, func(ctx *ckdsim.Ctx) {
		iterations++
		fmt.Printf("t=%v  iteration %d received: payload[0..4] = %v\n",
			ctx.Now(), iterations, recvBuf.Bytes()[:4])
		if iterations < 3 {
			// Re-arm the channel (no synchronization with the sender!)
			// and ask for another put. In a real iterative code the
			// application's own phase structure guarantees the sender
			// does not overwrite data early; here we just drive it from
			// the callback.
			mgr.Ready(handle)
			if err := mgr.Put(handle); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sender side (PE 0): bind the source buffer to the channel.
	sendBuf := mach.AllocRegion(0, 256, false)
	for i := range sendBuf.Bytes() {
		sendBuf.Bytes()[i] = byte(i + 1)
	}
	if err := mgr.AssocLocal(handle, 0, sendBuf); err != nil {
		log.Fatal(err)
	}

	// Kick off the first put from PE 0 and run the simulation.
	sys.RTS().StartAt(0, func(ctx *ckdsim.Ctx) {
		if err := mgr.Put(handle); err != nil {
			log.Fatal(err)
		}
	})
	end := sys.Run()

	fmt.Printf("3 one-sided transfers completed in %v of virtual time\n", end)
	fmt.Printf("puts issued: %d, delivered: %d\n", handle.Puts(), handle.Delivered())
	if errs := sys.Errors(); len(errs) > 0 {
		log.Fatalf("contract violations: %v", errs)
	}
}
