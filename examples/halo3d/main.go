// halo3d: a small 3-D Jacobi stencil with CkDirect halo exchange, built
// directly on the public API (the full-featured version with the MSG/CKD
// comparison lives in internal/apps/stencil; this example shows the
// pattern a user would write).
//
// A 2x2x1 chare grid iterates a Jacobi relaxation; each chare exchanges
// boundary faces with its neighbours over persistent CkDirect channels
// and a global reduction separates iterations.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/pkg/ckdsim"
)

const (
	block = 8 // cells per chare per dimension
	iters = 5
	oob   = 0x7FF8_FACE_FACE_0001
)

type chare struct {
	ix, iy     int
	cur, next  []float64
	sendX      []byte // face toward +x / -x neighbour (one each, see wiring)
	sendY      []byte
	inFaces    map[string][]byte
	inHandles  []*ckdsim.Handle
	outHandles []*ckdsim.Handle
	got, need  int
}

func main() {
	sys := ckdsim.NewSystem(ckdsim.AbeIB(), 4, ckdsim.Options{Checked: true})
	rts, mgr, mach := sys.RTS(), sys.CkDirect(), sys.Machine()

	grid := rts.NewArray("grid", func(ix ckdsim.Index) int {
		return ix[0] + 2*ix[1] // one chare per PE
	})
	chares := map[[2]int]*chare{}
	for iy := 0; iy < 2; iy++ {
		for ix := 0; ix < 2; ix++ {
			c := &chare{
				ix: ix, iy: iy,
				cur:     make([]float64, block*block),
				next:    make([]float64, block*block),
				inFaces: map[string][]byte{},
			}
			for i := range c.cur {
				c.cur[i] = float64((i*7+ix*3+iy*11)%13) / 13
			}
			chares[[2]int{ix, iy}] = c
			grid.Insert(ckdsim.Idx2(ix, iy), c)
		}
	}

	// Wire channels: each chare sends its +x face to the x-neighbour and
	// its +y face to the y-neighbour (periodic 2x2 torus for brevity).
	faceBytes := block * 8
	for key, c := range chares {
		pe := key[0] + 2*key[1]
		c.sendX = make([]byte, faceBytes)
		c.sendY = make([]byte, faceBytes)
		for _, dir := range []string{"x", "y"} {
			nb := chares[[2]int{(key[0] + 1) % 2, key[1]}]
			send := c.sendX
			if dir == "y" {
				nb = chares[[2]int{key[0], (key[1] + 1) % 2}]
				send = c.sendY
			}
			nbPE := nb.ix + 2*nb.iy
			recv := make([]byte, faceBytes)
			nb.inFaces[dir] = recv
			nb.need++
			nbc := nb
			var h *ckdsim.Handle
			var err error
			h, err = mgr.CreateHandle(nbPE, mach.WrapRegion(nbPE, recv), oob,
				func(ctx *ckdsim.Ctx) { nbc.onFace(ctx, grid, mgr) })
			if err != nil {
				log.Fatal(err)
			}
			if err := mgr.AssocLocal(h, pe, mach.WrapRegion(pe, send)); err != nil {
				log.Fatal(err)
			}
			nb.inHandles = append(nb.inHandles, h)
			c.outHandles = append(c.outHandles, h)
		}
	}

	iterEP := grid.EntryMethod("iterate", func(ctx *ckdsim.Ctx, msg *ckdsim.Message) {
		c := ctx.Obj().(*chare)
		c.extractFaces()
		for _, h := range c.outHandles {
			if err := mgr.Put(h); err != nil {
				log.Fatal(err)
			}
		}
	})
	round := 0
	grid.SetReductionClient(ckdsim.Sum, func(ctx *ckdsim.Ctx, vals []float64) {
		round++
		fmt.Printf("iteration %d done at t=%v, residual %.6f\n", round, ctx.Now(), vals[0])
		if round < iters {
			ctx.Broadcast(grid, iterEP, &ckdsim.Message{Size: 8})
		}
	})
	rts.StartAt(0, func(ctx *ckdsim.Ctx) {
		ctx.Broadcast(grid, iterEP, &ckdsim.Message{Size: 8})
	})
	total := sys.Run()
	fmt.Printf("%d iterations in %v of virtual time on 4 PEs\n", iters, total)
	if errs := sys.Errors(); len(errs) > 0 {
		log.Fatalf("contract violations: %v", errs)
	}
}

func (c *chare) extractFaces() {
	for i := 0; i < block; i++ {
		// +x face: last column; +y face: last row.
		binary.LittleEndian.PutUint64(c.sendX[i*8:], math.Float64bits(c.cur[i*block+block-1]))
		binary.LittleEndian.PutUint64(c.sendY[i*8:], math.Float64bits(c.cur[(block-1)*block+i]))
	}
}

func (c *chare) onFace(ctx *ckdsim.Ctx, grid *ckdsim.Array, mgr *ckdsim.Manager) {
	c.got++
	if c.got < c.need {
		return
	}
	c.got = 0
	// Relax: average each cell with its west/north neighbour, reading
	// ghosts from the arrived faces.
	ctx.Charge(ckdsim.Microseconds(float64(block*block) * 0.004))
	residual := 0.0
	for y := 0; y < block; y++ {
		for x := 0; x < block; x++ {
			v := c.cur[y*block+x]
			w := ghostOr(c, "x", y, x-1)
			n := ghostOr(c, "y", x, y-1)
			nv := (v + w + n) / 3
			c.next[y*block+x] = nv
			residual += math.Abs(nv - v)
		}
	}
	c.cur, c.next = c.next, c.cur
	for _, h := range c.inHandles {
		mgr.Ready(h)
	}
	grid.ContributeFrom(ckdsim.Idx2(c.ix, c.iy), residual)
}

func ghostOr(c *chare, dir string, lane, idx int) float64 {
	if idx >= 0 {
		if dir == "x" {
			return c.cur[lane*block+idx]
		}
		return c.cur[idx*block+lane]
	}
	face := c.inFaces[dir]
	return math.Float64frombits(binary.LittleEndian.Uint64(face[lane*8:]))
}
