// Package repro_test hosts the benchmark entry points: one testing.B per
// table and figure of the paper, each regenerating the artifact at quick
// scale through the same drivers cmd/ckbench uses at paper scale.
//
// Benchmarks report two custom metrics where meaningful:
//
//	us/rtt      — modelled round-trip time (pingpong benches)
//	improve-%   — CkDirect's improvement over the baseline (app benches)
//
// Wall-clock ns/op measures the simulator itself, which is incidental;
// the virtual-time metrics are the reproduction's results.
package repro_test

import (
	"testing"

	"repro/internal/apps/matmul"
	"repro/internal/apps/openatom"
	"repro/internal/apps/pingpong"
	"repro/internal/apps/stencil"
	"repro/internal/bench"
	"repro/internal/netmodel"
)

// BenchmarkTable1PingpongIB regenerates paper Table 1 (one representative
// cell per protocol; run cmd/ckbench -exp table1 for the full table).
func BenchmarkTable1PingpongIB(b *testing.B) {
	modes := []pingpong.Mode{
		pingpong.CharmMsg, pingpong.CkDirect, pingpong.MPI, pingpong.MPIPut, pingpong.MPIAlt,
	}
	for _, mode := range modes {
		b.Run(mode.String(), func(b *testing.B) {
			var rtt float64
			for i := 0; i < b.N; i++ {
				rtt = pingpong.Run(pingpong.Config{
					Platform: netmodel.AbeIB, Mode: mode, Size: 30000, Iters: 10,
				}).RTTMicros()
			}
			b.ReportMetric(rtt, "us/rtt")
		})
	}
}

// BenchmarkTable2PingpongBGP regenerates paper Table 2.
func BenchmarkTable2PingpongBGP(b *testing.B) {
	modes := []pingpong.Mode{
		pingpong.CharmMsg, pingpong.CkDirect, pingpong.MPI, pingpong.MPIPut,
	}
	for _, mode := range modes {
		b.Run(mode.String(), func(b *testing.B) {
			var rtt float64
			for i := 0; i < b.N; i++ {
				rtt = pingpong.Run(pingpong.Config{
					Platform: netmodel.SurveyorBGP, Mode: mode, Size: 30000, Iters: 10,
				}).RTTMicros()
			}
			b.ReportMetric(rtt, "us/rtt")
		})
	}
}

// BenchmarkFig2aStencilIB regenerates paper Figure 2(a) at quick scale.
func BenchmarkFig2aStencilIB(b *testing.B) {
	benchStencil(b, netmodel.AbeIB, 32)
}

// BenchmarkFig2bStencilBGP regenerates paper Figure 2(b) at quick scale.
func BenchmarkFig2bStencilBGP(b *testing.B) {
	benchStencil(b, netmodel.SurveyorBGP, 64)
}

func benchStencil(b *testing.B, plat *netmodel.Platform, pes int) {
	var pct float64
	for i := 0; i < b.N; i++ {
		_, _, pct = stencil.Improvement(stencil.Config{
			Platform: plat,
			PEs:      pes, Virtualization: 8,
			NX: 256, NY: 256, NZ: 128,
			Iters: 2, Warmup: 1,
		})
	}
	b.ReportMetric(pct, "improve-%")
}

// BenchmarkFig3MatmulBGP regenerates the Blue Gene/P half of Figure 3.
func BenchmarkFig3MatmulBGP(b *testing.B) {
	benchMatmul(b, netmodel.SurveyorBGP, 128)
}

// BenchmarkFig3MatmulAbe regenerates the Abe half of Figure 3.
func BenchmarkFig3MatmulAbe(b *testing.B) {
	benchMatmul(b, netmodel.AbeIB, 64)
}

func benchMatmul(b *testing.B, plat *netmodel.Platform, pes int) {
	var pct float64
	for i := 0; i < b.N; i++ {
		_, _, pct = matmul.Improvement(matmul.Config{
			Platform: plat, PEs: pes, N: 2048, Iters: 2, Warmup: 1,
		})
	}
	b.ReportMetric(pct, "improve-%")
}

// BenchmarkFig4OpenAtomAbe regenerates Figure 4 (full step and PC-only).
func BenchmarkFig4OpenAtomAbe(b *testing.B) {
	benchOpenAtom(b, netmodel.AbeIB, 2)
}

// BenchmarkFig5OpenAtomBGP regenerates Figure 5.
func BenchmarkFig5OpenAtomBGP(b *testing.B) {
	benchOpenAtom(b, netmodel.SurveyorBGP, 0)
}

func benchOpenAtom(b *testing.B, plat *netmodel.Platform, coresPerNode int) {
	for _, scope := range []openatom.Scope{openatom.FullStep, openatom.PCOnly} {
		b.Run(scope.String(), func(b *testing.B) {
			var pct float64
			for i := 0; i < b.N; i++ {
				_, _, pct = openatom.Improvement(openatom.Config{
					Platform: plat,
					Scope:    scope,
					PEs:      32, CoresPerNode: coresPerNode,
					NStates: 64, NPlanes: 8, Grain: 16, Points: 512,
					Steps: 2, Warmup: 1,
				})
			}
			b.ReportMetric(pct, "improve-%")
		})
	}
}

// BenchmarkAblationPollingWindow regenerates the §5.2 polling ablation.
func BenchmarkAblationPollingWindow(b *testing.B) {
	var naiveOverMsg float64
	for i := 0; i < b.N; i++ {
		t := bench.AblationPolling(bench.Quick)
		msg := t.Row("charm messages")
		naive := t.Row("ckdirect naive Ready")
		last := len(msg) - 1
		naiveOverMsg = (naive[last]/msg[last] - 1) * 100
	}
	b.ReportMetric(naiveOverMsg, "naive-slowdown-%")
}

// BenchmarkAblationCostComponents regenerates the cost decomposition.
func BenchmarkAblationCostComponents(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		t := bench.AblationCosts()
		total = t.Row("total one-way")[0]
	}
	b.ReportMetric(total, "us/oneway-100B")
}

// BenchmarkAblationInfoHeader regenerates the BG/P context-delivery
// ablation.
func BenchmarkAblationInfoHeader(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		t := bench.AblationInfoHeader(bench.Quick)
		gap = t.Rows[1].Values[0] - t.Rows[0].Values[0]
	}
	b.ReportMetric(gap, "lookup-penalty-us")
}

// BenchmarkAblationPutGet regenerates the §2 put-vs-get comparison.
func BenchmarkAblationPutGet(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		t := bench.AblationPutGet(bench.Quick)
		put := t.Row("abe-infiniband put")
		get := t.Row("abe-infiniband get")
		penalty = get[0] - put[0]
	}
	b.ReportMetric(penalty, "get-penalty-us-100B")
}

// BenchmarkSimulatorThroughput measures the DES engine itself: simulated
// message deliveries per wall-clock second at stencil-like load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := stencil.Run(stencil.Config{
			Platform: netmodel.SurveyorBGP, Mode: stencil.Ckd,
			PEs: 64, Virtualization: 8,
			NX: 256, NY: 256, NZ: 128,
			Iters: 2, Warmup: 1,
		})
		b.ReportMetric(float64(res.TotalEvents), "events/run")
	}
}
